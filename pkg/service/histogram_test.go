package service

import (
	"math"
	"strings"
	"testing"

	"repro/pkg/client"
)

func TestHistogramObserve(t *testing.T) {
	h := newHistogram([]float64{1, 10})
	for _, v := range []float64{0.5, 1, 1.5, 10, 100, math.Inf(1)} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // dropped
	// Values at a bound land in that bound's bucket (le is inclusive).
	if got := h.counts; got[0] != 2 || got[1] != 2 || got[2] != 2 {
		t.Errorf("bucket counts %v", got)
	}
	if h.n != 6 {
		t.Errorf("count %d, want 6", h.n)
	}
	if !math.IsInf(h.sum, 1) {
		t.Errorf("sum %v", h.sum)
	}
}

// The hand-rolled exposition must round-trip through the pkg/client
// parser with the Prometheus invariants intact.
func TestHistogramWriteParsesBack(t *testing.T) {
	h := newHistogram(expBuckets(0.001, 4, 5))
	for _, v := range []float64{0.0005, 0.002, 0.01, 0.3, 2} {
		h.Observe(v)
	}
	var b strings.Builder
	h.write(&b, "test_seconds", "Test latencies.")
	m, err := client.ParseMetrics(b.String())
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, b.String())
	}
	parsed := m.Histograms["test_seconds"]
	if parsed == nil {
		t.Fatalf("histogram not found in:\n%s", b.String())
	}
	if err := parsed.Validate(); err != nil {
		t.Fatal(err)
	}
	if parsed.Count != 5 || math.Abs(parsed.Sum-2.3125) > 1e-12 {
		t.Errorf("parsed count %d sum %v", parsed.Count, parsed.Sum)
	}
	// 6 bounds: the 5 finite ones plus +Inf.
	if len(parsed.Bounds) != 6 || !math.IsInf(parsed.Bounds[5], 1) {
		t.Errorf("bounds %v", parsed.Bounds)
	}
	// Quantiles are usable straight off the parsed form.
	if p50 := parsed.Quantile(0.5); math.IsNaN(p50) || p50 <= 0 {
		t.Errorf("p50 %v", p50)
	}
}

func TestExpBuckets(t *testing.T) {
	got := expBuckets(0.001, 4, 3)
	want := []float64{0.001, 0.004, 0.016}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-15 {
			t.Fatalf("buckets %v, want %v", got, want)
		}
	}
}
