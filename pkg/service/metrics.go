package service

import (
	"fmt"
	"net/http"
)

// handleMetrics serves Prometheus-style text metrics: jobs by state,
// queue depth/capacity, worker count, total chain iterations and the
// scrape-to-scrape iteration rate. Hand-rolled — the module has no
// dependencies — but the exposition format matches what any Prometheus
// scraper expects.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	m := s.m
	counts := m.StateCounts()
	depth, capacity := m.QueueDepth()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "# HELP mcmcd_jobs Number of jobs by lifecycle state.\n")
	fmt.Fprintf(w, "# TYPE mcmcd_jobs gauge\n")
	for _, st := range []State{StatePending, StateRunning, StateDone, StateFailed, StateCancelled} {
		fmt.Fprintf(w, "mcmcd_jobs{state=%q} %d\n", string(st), counts[st])
	}
	fmt.Fprintf(w, "# HELP mcmcd_queue_depth Jobs waiting in the bounded queue.\n")
	fmt.Fprintf(w, "# TYPE mcmcd_queue_depth gauge\n")
	fmt.Fprintf(w, "mcmcd_queue_depth %d\n", depth)
	fmt.Fprintf(w, "# HELP mcmcd_queue_capacity Capacity of the bounded queue.\n")
	fmt.Fprintf(w, "# TYPE mcmcd_queue_capacity gauge\n")
	fmt.Fprintf(w, "mcmcd_queue_capacity %d\n", capacity)
	fmt.Fprintf(w, "# HELP mcmcd_workers Concurrent job slots.\n")
	fmt.Fprintf(w, "# TYPE mcmcd_workers gauge\n")
	fmt.Fprintf(w, "mcmcd_workers %d\n", m.pool.Workers())
	fmt.Fprintf(w, "# HELP mcmcd_iterations_total Aggregate chain iterations across all jobs.\n")
	fmt.Fprintf(w, "# TYPE mcmcd_iterations_total counter\n")
	fmt.Fprintf(w, "mcmcd_iterations_total %d\n", m.itersTotal.Load())
	fmt.Fprintf(w, "# HELP mcmcd_iterations_per_second Iteration rate since the previous scrape.\n")
	fmt.Fprintf(w, "# TYPE mcmcd_iterations_per_second gauge\n")
	fmt.Fprintf(w, "mcmcd_iterations_per_second %g\n", m.iterRate())
	fmt.Fprintf(w, "# HELP mcmcd_uptime_seconds Seconds since the manager started.\n")
	fmt.Fprintf(w, "# TYPE mcmcd_uptime_seconds counter\n")
	fmt.Fprintf(w, "mcmcd_uptime_seconds %g\n", m.Uptime().Seconds())
}
