package service

import (
	"fmt"
	"io"
	"net/http"

	"repro/pkg/api"
)

// metrics serves the Prometheus text exposition: jobs by state, queue
// depth/capacity, worker count, aggregate iteration counters, and the
// request-path histograms (queue wait, job duration, per-iteration
// latency). Hand-rolled — the module has no dependencies — but the
// format is the standard one; pkg/client.ParseMetrics parses it back
// and the format test pins the histogram invariants.
func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	m := s.m
	counts := m.StateCounts()
	depth, capacity := m.QueueDepth()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "# HELP mcmcd_jobs Number of jobs by lifecycle state.\n")
	fmt.Fprintf(w, "# TYPE mcmcd_jobs gauge\n")
	for _, st := range []api.JobState{api.StatePending, api.StateRunning, api.StateDone, api.StateFailed, api.StateCancelled} {
		fmt.Fprintf(w, "mcmcd_jobs{state=%q} %d\n", string(st), counts[st])
	}
	fmt.Fprintf(w, "# HELP mcmcd_queue_depth Jobs waiting in the bounded queue.\n")
	fmt.Fprintf(w, "# TYPE mcmcd_queue_depth gauge\n")
	fmt.Fprintf(w, "mcmcd_queue_depth %d\n", depth)
	fmt.Fprintf(w, "# HELP mcmcd_queue_capacity Capacity of the bounded queue.\n")
	fmt.Fprintf(w, "# TYPE mcmcd_queue_capacity gauge\n")
	fmt.Fprintf(w, "mcmcd_queue_capacity %d\n", capacity)
	fmt.Fprintf(w, "# HELP mcmcd_workers Concurrent job slots.\n")
	fmt.Fprintf(w, "# TYPE mcmcd_workers gauge\n")
	fmt.Fprintf(w, "mcmcd_workers %d\n", m.pool.Workers())
	fmt.Fprintf(w, "# HELP mcmcd_iterations_total Aggregate chain iterations across all jobs.\n")
	fmt.Fprintf(w, "# TYPE mcmcd_iterations_total counter\n")
	fmt.Fprintf(w, "mcmcd_iterations_total %d\n", m.itersTotal.Load())
	fmt.Fprintf(w, "# HELP mcmcd_iterations_per_second Iteration rate since the previous scrape.\n")
	fmt.Fprintf(w, "# TYPE mcmcd_iterations_per_second gauge\n")
	fmt.Fprintf(w, "mcmcd_iterations_per_second %g\n", m.iterRate())
	fmt.Fprintf(w, "# HELP mcmcd_uptime_seconds Seconds since the manager started.\n")
	fmt.Fprintf(w, "# TYPE mcmcd_uptime_seconds counter\n")
	fmt.Fprintf(w, "mcmcd_uptime_seconds %g\n", m.Uptime().Seconds())

	// Per-job speculative-executor telemetry, from each job's latest
	// progress snapshot (running and terminal jobs alike; only jobs that
	// ever reported a speculation width appear).
	first := true
	for _, job := range m.Jobs() {
		width, _, ok := job.specTelemetry()
		if !ok {
			continue
		}
		if first {
			fmt.Fprintf(w, "# HELP mcmcd_spec_width Current speculation width of the job's global phases (adaptive controller's pick, or the fixed configured width).\n")
			fmt.Fprintf(w, "# TYPE mcmcd_spec_width gauge\n")
			first = false
		}
		fmt.Fprintf(w, "mcmcd_spec_width{job=%q} %d\n", job.ID(), width)
	}
	first = true
	for _, job := range m.Jobs() {
		_, speedup, ok := job.specTelemetry()
		if !ok {
			continue
		}
		if first {
			fmt.Fprintf(w, "# HELP mcmcd_spec_speedup Measured committed-iterations-per-batch of the job's speculative executor (eq. 3 speedup; 1 means speculation never helped).\n")
			fmt.Fprintf(w, "# TYPE mcmcd_spec_speedup gauge\n")
			first = false
		}
		fmt.Fprintf(w, "mcmcd_spec_speedup{job=%q} %g\n", job.ID(), speedup)
	}

	m.tel.queueWait.write(w, "mcmcd_queue_wait_seconds",
		"Submit-to-start latency of jobs in seconds.")
	m.tel.jobDuration.write(w, "mcmcd_job_duration_seconds",
		"Start-to-terminal wall clock of jobs in seconds.")
	m.tel.iterLatency.write(w, "mcmcd_iteration_seconds",
		"Seconds per chain iteration, observed per progress chunk.")

	// Role-specific expositions registered via AddMetrics (the
	// coordinator's lease/worker gauges).
	m.metricsMu.Lock()
	extra := append([]func(io.Writer){}, m.extraMetrics...)
	m.metricsMu.Unlock()
	for _, f := range extra {
		f(w)
	}
}
