package service

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"repro/pkg/api"
)

// Remote is the execution seam of an externally-run manager (see
// NewExternal): the coordinator drains runnable jobs from it, reports
// worker progress into it, and hands back terminal outcomes or expired
// leases. It owns no policy — leases, heartbeats and expiry live in
// the coordinator; Remote only keeps the Manager's job bookkeeping
// (states, SSE fan-out, spool, metrics) exactly as an in-process run
// would.
type Remote struct {
	m *Manager

	mu sync.Mutex
	// requeued holds jobs whose lease expired, consulted before the
	// bounded submit queue: a re-leased job must never compete with new
	// submissions for queue capacity (or be lost to backpressure).
	requeued []*Job
	wake     chan struct{} // closed and replaced whenever requeued grows
	// track carries per-job iteration-latency state for the
	// mcmcd_iteration_seconds histogram (what the in-process observer
	// keeps in locals).
	track map[*Job]*iterTrack
}

type iterTrack struct {
	lastT time.Time
	lastI int64
}

func newRemote(m *Manager) *Remote {
	return &Remote{m: m, wake: make(chan struct{}), track: make(map[*Job]*iterTrack)}
}

// Next blocks for the next runnable job: an expired-lease requeue
// first, else the submit queue. It returns ErrStopped once the manager
// shuts down, or ctx.Err when the caller gives up (the long-poll
// window).
func (r *Remote) Next(ctx context.Context) (*Job, error) {
	for {
		r.mu.Lock()
		if len(r.requeued) > 0 {
			job := r.requeued[0]
			r.requeued = r.requeued[1:]
			r.mu.Unlock()
			return job, nil
		}
		wake := r.wake
		r.mu.Unlock()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-r.m.ctx.Done():
			return nil, ErrStopped
		case job := <-r.m.queue:
			return job, nil
		case <-wake:
			// A requeue landed; loop to pick it up.
		}
	}
}

// Describe returns what a lease grant ships: the job's durable record,
// the checkpoint bytes to resume from (nil = scratch) and whether this
// run is a flagged scratch restart.
func (r *Remote) Describe(job *Job) (rec api.JobRecord, checkpoint []byte, restarted bool) {
	rec = recordOf(job)
	job.mu.Lock()
	checkpoint = job.resumeBlob
	restarted = job.restarted
	job.mu.Unlock()
	return rec, checkpoint, restarted
}

// Start claims the job for a worker; false means the job is no longer
// pending (cancelled while queued) and the caller should grant the
// lease to another job instead.
func (r *Remote) Start(job *Job, workerID string, cancel func()) bool {
	wait, ok := job.claimFor(workerID, cancel)
	if !ok {
		return false
	}
	r.m.tel.queueWait.Observe(wait.Seconds())
	return true
}

// Observe feeds one worker-reported progress snapshot into the job —
// the same bookkeeping (SSE fan-out, convergence window, aggregate
// iteration counters, per-iteration latency) a local run's Observer
// performs.
func (r *Remote) Observe(job *Job, ev api.ProgressEvent) {
	p := ev.ToParmcmc()
	r.mu.Lock()
	t := r.track[job]
	if t == nil {
		t = &iterTrack{}
		r.track[job] = t
	}
	now := time.Now()
	if !t.lastT.IsZero() && p.Iter > t.lastI {
		r.m.tel.iterLatency.Observe(now.Sub(t.lastT).Seconds() / float64(p.Iter-t.lastI))
	}
	t.lastT, t.lastI = now, p.Iter
	r.mu.Unlock()
	r.m.itersTotal.Add(job.observe(p))
}

// Complete lands a worker-reported terminal outcome. A successful
// result arrives as the worker's already-encoded ResultView and is
// stored byte-for-byte — the bit-identical contract extends across the
// wire. An errMsg of "cancelled" (or any error after a client
// cancellation) terminates the job as cancelled; other errors as
// failed.
func (r *Remote) Complete(job *Job, result json.RawMessage, errMsg string) {
	r.dropTrack(job)
	if errMsg != "" || len(result) == 0 {
		state := api.StateFailed
		if job.userCancelled() || errMsg == "cancelled" {
			state, errMsg = api.StateCancelled, "cancelled"
		} else if errMsg == "" {
			errMsg = "worker reported no result"
		}
		r.m.terminate(job, state, errMsg)
		return
	}
	// Account the final iteration count exactly like Manager.finish
	// does from the in-process Result.
	var v struct {
		Iterations int64 `json:"iterations"`
	}
	if json.Unmarshal(result, &v) == nil {
		r.m.itersTotal.Add(job.accountIters(v.Iterations))
	}
	ran, ok := job.finishTerminal(api.StateDone, result, "")
	if !ok {
		return
	}
	r.m.tel.jobDuration.Observe(ran.Seconds())
	if err := r.m.spoolResult(job, result); err != nil {
		r.m.cfg.Logf("service: spooling result of %s: %v", job.ID(), err)
	}
	job.releaseInput()
	job.publish("state", job.Status())
}

// Requeue returns an expired lease's job to the runnable set, resuming
// from its latest spooled checkpoint when one parses (the common case)
// or from scratch with Restarted flagged (no checkpoint yet, or a
// corrupt one). A job whose cancellation was requested while leased
// terminates as cancelled instead — its client asked for it to stop,
// not to run again. Safe against the dead worker's last checkpoint
// write racing in: every checkpoint of the same (options, seed) chain
// is a state of the same trajectory, so whichever version the read
// sees resumes to the bit-identical result.
func (r *Remote) Requeue(job *Job) {
	r.dropTrack(job)
	if job.userCancelled() {
		r.m.terminate(job, api.StateCancelled, "cancelled")
		return
	}
	cp, blob, ok := r.m.readCheckpoint(job.ID())
	job.mu.Lock()
	if job.state != api.StateRunning {
		// Terminal (or never started) — nothing to re-lease.
		job.mu.Unlock()
		return
	}
	job.state = api.StatePending
	job.started = time.Time{}
	job.cancel = nil
	job.worker = ""
	// Reset the iteration watermark so the next run's first snapshot
	// re-baselines (resume) or counts from zero (scratch).
	job.lastIter = 0
	if ok {
		job.resume, job.resumeBlob, job.restarted = cp, blob, false
	} else {
		job.resume, job.resumeBlob, job.restarted = nil, nil, true
	}
	// Tell live SSE watchers: pending again, and — on a scratch
	// restart — Restarted, so they rewind their progress watermark.
	job.publishLocked("state", job.statusLocked())
	job.mu.Unlock()

	r.mu.Lock()
	r.requeued = append(r.requeued, job)
	close(r.wake)
	r.wake = make(chan struct{})
	r.mu.Unlock()
}

func (r *Remote) dropTrack(job *Job) {
	r.mu.Lock()
	delete(r.track, job)
	r.mu.Unlock()
}
