package service

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/pkg/api"
	"repro/pkg/parmcmc"
)

// MaterializeRecord rebuilds a job's runnable inputs from its durable
// record: the resolved (seeded) parmcmc options and the input pixels —
// decoded from the spooled upload named by the record, or synthesized
// from its scene spec. Both paths are deterministic, so a worker
// materialising the same record always runs the same chain; this is
// what a lease grant hands to pkg/service/worker.
func MaterializeRecord(rec api.JobRecord, spoolDir string) (pix []float64, w, h int, opt parmcmc.Options, err error) {
	spec := rec.Options
	o, aerr := optionsFromSpec(&spec)
	if aerr != nil {
		return nil, 0, 0, parmcmc.Options{}, fmt.Errorf("service: record %s: invalid options: %v", rec.ID, aerr)
	}
	o.Seed = rec.Seed
	switch {
	case rec.Input != "":
		raw, rerr := os.ReadFile(filepath.Join(spoolDir, rec.ID, filepath.Base(rec.Input)))
		if rerr != nil {
			return nil, 0, 0, parmcmc.Options{}, fmt.Errorf("service: record %s: %w", rec.ID, rerr)
		}
		var derr *apiError
		pix, w, h, _, derr = decodeImageBytes("", raw)
		if derr != nil {
			return nil, 0, 0, parmcmc.Options{}, fmt.Errorf("service: record %s: decoding input: %v", rec.ID, derr)
		}
	case rec.Scene != nil:
		ps, serr := rec.Scene.ToParmcmc()
		if serr != nil {
			return nil, 0, 0, parmcmc.Options{}, fmt.Errorf("service: record %s: %v", rec.ID, serr)
		}
		pix, _ = parmcmc.GenerateScene(ps)
		w, h = rec.Scene.W, rec.Scene.H
	default:
		return nil, 0, 0, parmcmc.Options{}, errors.New("service: record " + rec.ID + " has no input")
	}
	return pix, w, h, o, nil
}
