package parmcmc

import (
	"fmt"
	"sort"

	"repro/internal/geom"
)

// Shape selects the artifact family of a detection run. Like Strategy,
// shapes live in a name→definition registry that is the single source
// of truth behind String, ParseShape, ShapeKinds and the model wiring —
// adding a family is one registerShape call plus its geom/model support.
type Shape int

const (
	// Discs is the paper's circular-artifact workload (default).
	Discs Shape = iota
	// Ellipses generalises to per-feature semi-axes and rotation.
	Ellipses
)

type shapeDef struct {
	value Shape
	name  string
	kind  geom.ShapeKind
}

var (
	shapesByValue = map[Shape]*shapeDef{}
	shapesByName  = map[string]*shapeDef{}
)

// registerShape wires a shape family into the registry; duplicate
// values or names are programming errors.
func registerShape(value Shape, name string, kind geom.ShapeKind) {
	if _, dup := shapesByValue[value]; dup {
		panic(fmt.Sprintf("parmcmc: shape value %d registered twice", int(value)))
	}
	if _, dup := shapesByName[name]; dup {
		panic(fmt.Sprintf("parmcmc: shape name %q registered twice", name))
	}
	def := &shapeDef{value: value, name: name, kind: kind}
	shapesByValue[value] = def
	shapesByName[name] = def
}

func init() {
	registerShape(Discs, geom.KindDisc.String(), geom.KindDisc)
	registerShape(Ellipses, geom.KindEllipse.String(), geom.KindEllipse)
}

func (s Shape) String() string {
	if def, ok := shapesByValue[s]; ok {
		return def.name
	}
	return fmt.Sprintf("Shape(%d)", int(s))
}

// kind maps the public Shape onto the internal geometry tag. Unknown
// values map to discs; DetectContext rejects them before this matters.
func (s Shape) kind() geom.ShapeKind {
	if def, ok := shapesByValue[s]; ok {
		return def.kind
	}
	return geom.KindDisc
}

// ParseShape converts a name (as printed by String) to a Shape.
func ParseShape(name string) (Shape, error) {
	if def, ok := shapesByName[name]; ok {
		return def.value, nil
	}
	return 0, fmt.Errorf("parmcmc: unknown shape %q", name)
}

// ShapeKinds lists all registered shape families in declaration order.
func ShapeKinds() []Shape {
	out := make([]Shape, 0, len(shapesByValue))
	for s := range shapesByValue {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// shapeFor resolves a Shape to its registry entry.
func shapeFor(s Shape) (*shapeDef, error) {
	def, ok := shapesByValue[s]
	if !ok {
		return nil, fmt.Errorf("parmcmc: unknown shape %v", s)
	}
	return def, nil
}
