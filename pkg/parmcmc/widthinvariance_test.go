package parmcmc

import "testing"

// The speculative sampler's realized chain must be independent of the
// speculation width — every fixed width and the adaptive controller
// (SpecWidth 0, whose timing-driven schedule differs on every run) must
// produce bit-identical results. This is what makes the adaptive mode
// safe to ship as the default: width is purely a throughput knob.
func TestSpecWidthInvariance(t *testing.T) {
	const w, h = 160, 160
	pix, _ := GenerateScene(SceneSpec{
		W: w, H: h, Count: 18, MeanRadius: 7, Noise: 0.08, Seed: 21,
	})
	base := Options{
		Strategy: PeriodicSpeculative, MeanRadius: 7,
		Iterations: 16000, Seed: 11, Workers: 2,
	}
	run := func(width int) *Result {
		t.Helper()
		opt := base
		opt.SpecWidth = width
		res, err := Detect(pix, w, h, opt)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		return res
	}
	ref := run(2)
	for _, width := range []int{3, 4, 8, 0} {
		mustEqualResults(t, label(width), ref, run(width))
	}
}

func label(width int) string {
	if width == 0 {
		return "adaptive vs width-2"
	}
	return "width-" + string(rune('0'+width)) + " vs width-2"
}
