package parmcmc

import (
	"context"

	"repro/internal/geom"
	"repro/internal/partition"
)

func init() {
	registerStrategy(Intelligent, "intelligent", newIntelligentSampler)
}

// newIntelligentSampler builds the §VIII intelligent-partitioning
// sampler: the pre-processor cuts the image along artifact-free bands,
// then one independent chain runs per piece.
func newIntelligentSampler(env *runEnv) (sampler, error) {
	regions := partition.IntelligentRegions(
		env.im, env.opt.Threshold, int(2.2*env.opt.MeanRadius), 2)
	rr, err := newRegionRunner(env, regions)
	if err != nil {
		return nil, err
	}
	return &intelligentSampler{regionRunner: rr}, nil
}

type intelligentSampler struct {
	regionRunner
}

func (sp *intelligentSampler) Step(ctx context.Context, n int) (bool, error) {
	return sp.step(ctx, n)
}

func (sp *intelligentSampler) Snapshot() Progress { return sp.progress() }

func (sp *intelligentSampler) Finish(res *Result) error {
	results := sp.results()
	var circles []geom.Ellipse
	for _, r := range results {
		circles = append(circles, r.Circles...)
	}
	// Merging is trivial — the pre-processor guarantees no artifact
	// spans a boundary (§IX) — so the union is the final model; score
	// it against the whole image for a cross-strategy-comparable
	// log-posterior.
	fill(res, circles, sp.env.scoreCircles(circles), 0)
	sp.finishRegions(res, results)
	return nil
}

func (sp *intelligentSampler) Checkpoint() ([]byte, error) { return sp.checkpoint() }
func (sp *intelligentSampler) Resume(data []byte) error    { return sp.resume(data) }
