package parmcmc

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/mcmc"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/trace"
)

func init() {
	registerStrategy(Periodic, "periodic", newPeriodicSampler(false))
	registerStrategy(PeriodicSpeculative, "periodic+spec", newPeriodicSampler(true))
}

// newPeriodicSampler builds the §V periodic-partitioning sampler;
// speculative additionally enables the eq. 3 speculative global moves,
// which is the only difference between the two registrations.
func newPeriodicSampler(speculative bool) samplerFactory {
	return func(env *runEnv) (sampler, error) {
		o := env.opt
		s, err := model.NewState(env.im, env.params)
		if err != nil {
			return nil, err
		}
		e, err := mcmc.New(s, rng.New(o.Seed), env.weights, env.steps)
		if err != nil {
			return nil, err
		}
		e.ScreenMinArea = o.ScreenMinArea
		timer := trace.NewPhaseTimer()
		copt := core.Options{
			LocalPhaseIters:  o.LocalPhaseIters,
			GridXM:           float64(env.im.W) / float64(o.PartitionGrid) * o.GridSlack,
			GridYM:           float64(env.im.H) / float64(o.PartitionGrid) * o.GridSlack,
			Workers:          o.Workers,
			LocalSpecWidth:   o.LocalSpecWidth,
			Timer:            timer,
			SimulateParallel: o.SimulateParallel,
		}
		if speculative {
			if o.SpecWidth == 0 {
				copt.SpecAdaptive = true
			} else {
				copt.SpecWidth = o.SpecWidth
			}
		}
		sp := &periodicSampler{env: env, e: e, timer: timer}
		copt.OnBarrier = func(info core.BarrierInfo) { sp.lastBarrier = info }
		pe, err := core.NewEngine(e, copt)
		if err != nil {
			return nil, err
		}
		sp.pe = pe
		return sp, nil
	}
}

// periodicSampler drives the alternating global/local schedule in
// whole fork/join cycles, so chunked execution replays the schedule of
// a monolithic run exactly.
type periodicSampler struct {
	env   *runEnv
	e     *mcmc.Engine
	pe    *core.Engine
	timer *trace.PhaseTimer

	// lastBarrier is the most recent local-phase barrier snapshot,
	// delivered through core.Options.OnBarrier.
	lastBarrier core.BarrierInfo

	// baseGlobalSecs/baseLocalSecs carry phase wall-clock from resumed
	// segments (the in-memory timer restarts at zero); the Sim bases do
	// the same for the executor's simulated-global accumulators.
	baseGlobalSecs, baseLocalSecs              float64
	baseSimGlobalSecs, baseSimGlobalSerialSecs float64
}

// Close releases the engine's persistent worker goroutines; drive calls
// it on every exit path.
func (sp *periodicSampler) Close() { sp.pe.Close() }

// AlignChunk rounds the chunk to whole multiples of the global+local
// cycle, keeping the alternating schedule identical to a single Run
// call. A degenerate cycle (all moves local) runs in one chunk.
func (sp *periodicSampler) AlignChunk(n int) int {
	g := sp.pe.GlobalPhaseIters()
	if g <= 0 {
		return sp.env.opt.Iterations
	}
	cycle := g + sp.env.opt.LocalPhaseIters
	return cycle * (1 + n/cycle)
}

func (sp *periodicSampler) Step(_ context.Context, n int) (bool, error) {
	total := int64(sp.env.opt.Iterations)
	if rem := total - sp.e.Iter; int64(n) > rem {
		n = int(rem)
	}
	if n > 0 {
		sp.pe.Run(n)
	}
	return sp.e.Iter >= total, nil
}

func (sp *periodicSampler) Snapshot() Progress {
	done := 0
	if sp.e.Iter >= int64(sp.env.opt.Iterations) {
		done = 1
	}
	p := Progress{
		Strategy: sp.env.opt.Strategy,
		Phase:    fmt.Sprintf("cycle %d", sp.lastBarrier.Barriers),
		Iter:     sp.e.Iter, Total: int64(sp.env.opt.Iterations),
		LogPost: sp.e.S.LogPost(), NumCircles: sp.e.S.Cfg.Len(),
		AcceptRate: 1 - sp.e.Stats.RejectionRate(),
		Partitions: 1, PartitionsDone: done,
	}
	if exec := sp.pe.Executor(); exec != nil {
		p.SpecWidth = exec.Width()
		p.SpecSpeedup = exec.MeasuredIterationsPerBatch()
	}
	return p
}

func (sp *periodicSampler) Finish(res *Result) error {
	o := sp.env.opt
	fill(res, sp.e.S.Cfg.Circles(), sp.e.S.LogPost(), sp.e.Iter)
	fillEngineStats(res, &sp.e.Stats)
	res.Partitions = o.PartitionGrid * o.PartitionGrid
	res.Barriers = sp.pe.Barriers
	res.GlobalSeconds = sp.baseGlobalSecs + sp.timer.Total("global").Seconds()
	res.LocalSeconds = sp.baseLocalSecs + sp.timer.Total("local").Seconds()
	res.SimLocalSeconds = sp.pe.SimLocalSeconds
	if exec := sp.pe.Executor(); exec != nil {
		res.SpecBatches = exec.Batches
		res.SpecSpeedup = exec.MeasuredIterationsPerBatch()
		res.SpecWidth = exec.Width()
		res.SimGlobalSeconds = sp.baseSimGlobalSecs + exec.SimSpecSeconds
		res.SimGlobalSerialSeconds = sp.baseSimGlobalSerialSecs + exec.SimSeqSeconds
	} else if o.SimulateParallel {
		// Serial global phases: the simulated machine runs them as-is.
		res.SimGlobalSeconds = res.GlobalSeconds
		res.SimGlobalSerialSeconds = res.GlobalSeconds
	}
	return nil
}

// periodicDump is the periodic strategies' checkpoint payload: the host
// engine, the speculative executor's efficiency counters, and the
// engine-level bookkeeping. The executor needs no RNG state of its own:
// per-iteration proposal streams are re-derived from the host stream's
// construction-time draw, and the realized chain is width-invariant, so
// adaptive width decisions need no replay either (see package spec).
//
// Shadows carried the pre-adaptive executor's per-slot RNG streams; the
// field survives so old checkpoints still decode, but its contents are
// ignored — the chain they described is re-derived, not replayed.
type periodicDump struct {
	Host                   mcmc.EngineDump
	Shadows                []rng.Saved
	ExecBatches            int64
	ExecConsumed           int64
	Barriers               int64
	SimLocalSeconds        float64
	GlobalSeconds          float64
	LocalSeconds           float64
	SimGlobalSeconds       float64
	SimGlobalSerialSeconds float64
}

func (sp *periodicSampler) Checkpoint() ([]byte, error) {
	d := periodicDump{
		Host:            sp.e.Dump(),
		Barriers:        sp.pe.Barriers,
		SimLocalSeconds: sp.pe.SimLocalSeconds,
		GlobalSeconds:   sp.baseGlobalSecs + sp.timer.Total("global").Seconds(),
		LocalSeconds:    sp.baseLocalSecs + sp.timer.Total("local").Seconds(),
	}
	if exec := sp.pe.Executor(); exec != nil {
		d.ExecBatches = exec.Batches
		d.ExecConsumed = exec.Consumed
		d.SimGlobalSeconds = sp.baseSimGlobalSecs + exec.SimSpecSeconds
		d.SimGlobalSerialSeconds = sp.baseSimGlobalSerialSecs + exec.SimSeqSeconds
	}
	return encodePayload(d)
}

func (sp *periodicSampler) Resume(data []byte) error {
	var d periodicDump
	if err := decodePayload(data, &d); err != nil {
		return err
	}
	if err := sp.e.Restore(d.Host); err != nil {
		return err
	}
	exec := sp.pe.Executor()
	if exec != nil {
		exec.Batches = d.ExecBatches
		exec.Consumed = d.ExecConsumed
		sp.baseSimGlobalSecs = d.SimGlobalSeconds
		sp.baseSimGlobalSerialSecs = d.SimGlobalSerialSeconds
	} else if d.ExecBatches > 0 {
		return fmt.Errorf("parmcmc: checkpoint carries speculative state but the run has no executor")
	}
	sp.pe.Barriers = d.Barriers
	sp.pe.SimLocalSeconds = d.SimLocalSeconds
	sp.baseGlobalSecs = d.GlobalSeconds
	sp.baseLocalSecs = d.LocalSeconds
	return nil
}
