package parmcmc

import (
	"fmt"
	"sort"
)

// The strategy registry maps each Strategy to its name and sampler
// factory. It is the single source of truth behind String,
// ParseStrategy, Strategies and DetectContext's sampler construction —
// adding a strategy is one registerStrategy call from the strategy's
// own file, with no parallel tables to update.

// samplerFactory builds a fresh sampler positioned at iteration zero
// for a validated run environment.
type samplerFactory func(env *runEnv) (sampler, error)

type strategyDef struct {
	value   Strategy
	name    string
	factory samplerFactory
}

var (
	strategiesByValue = map[Strategy]*strategyDef{}
	strategiesByName  = map[string]*strategyDef{}
)

// registerStrategy wires a strategy into the registry. Each sampler
// file calls it from an init function; duplicate values or names are
// programming errors.
func registerStrategy(value Strategy, name string, factory samplerFactory) {
	if _, dup := strategiesByValue[value]; dup {
		panic(fmt.Sprintf("parmcmc: strategy value %d registered twice", int(value)))
	}
	if _, dup := strategiesByName[name]; dup {
		panic(fmt.Sprintf("parmcmc: strategy name %q registered twice", name))
	}
	def := &strategyDef{value: value, name: name, factory: factory}
	strategiesByValue[value] = def
	strategiesByName[name] = def
}

func (s Strategy) String() string {
	if def, ok := strategiesByValue[s]; ok {
		return def.name
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ParseStrategy converts a name (as printed by String) to a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	if def, ok := strategiesByName[name]; ok {
		return def.value, nil
	}
	return 0, fmt.Errorf("parmcmc: unknown strategy %q", name)
}

// Strategies lists all registered strategies in declaration order.
func Strategies() []Strategy {
	out := make([]Strategy, 0, len(strategiesByValue))
	for s := range strategiesByValue {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// strategyFor resolves a Strategy to its registry entry.
func strategyFor(s Strategy) (*strategyDef, error) {
	def, ok := strategiesByValue[s]
	if !ok {
		return nil, fmt.Errorf("parmcmc: unknown strategy %v", s)
	}
	return def, nil
}
