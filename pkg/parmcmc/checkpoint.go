package parmcmc

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"time"

	"repro/internal/imaging"
)

// Checkpoint is a self-contained, serializable snapshot of a running
// detection, independent of Result: the strategy name, the chain-
// affecting options, an image fingerprint, accumulated wall-clock, and
// an opaque strategy payload holding model state, RNG streams and
// per-strategy bookkeeping. DetectResume continues a checkpointed run
// and produces results bit-identical to the uninterrupted run.
//
// Checkpoints are emitted through Options.OnCheckpoint at chunk
// boundaries, so they always sit on the same phase/swap/convergence-
// check alignment an uninterrupted run would pass through. The struct's
// fields are exported only for serialization; treat it as opaque and
// persist it with MarshalBinary.
type Checkpoint struct {
	// Version guards the wire format.
	Version int
	// Strategy is the registry name of the strategy that produced the
	// checkpoint.
	Strategy string
	// W, H and PixHash fingerprint the image; DetectResume refuses an
	// image that does not match.
	W, H    int
	PixHash uint64
	// Elapsed accumulates the wall-clock of all completed segments.
	Elapsed time.Duration
	// Options are the chain-affecting options of the original run.
	Options OptionsSnapshot
	// Data is the strategy sampler's private payload.
	Data []byte
}

// checkpointVersion is the current wire format version. Version 2: the
// configuration element changed from Circle{X,Y,R} to the generic
// Ellipse{X,Y,Rx,Ry,Theta}, whose gob payloads are not interchangeable
// (a v1 blob would decode with every radius silently zeroed), so v1
// checkpoints are rejected loudly instead.
const checkpointVersion = 2

// OptionsSnapshot mirrors the chain-affecting fields of Options in a
// serializable form (Options itself carries callbacks, which cannot and
// must not be persisted).
type OptionsSnapshot struct {
	// Shape is the registry name of the artifact family ("" reads as
	// "disc" so pre-shape checkpoints stay decodable).
	Shape            string
	MeanRadius       float64
	ExpectedCount    float64
	Threshold        float64
	Iterations       int
	Workers          int
	Seed             uint64
	LocalPhaseIters  int
	PartitionGrid    int
	SpecWidth        int
	LocalSpecWidth   int
	GridSlack        float64
	SimulateParallel bool
	Converge         bool
	OverlapPenalty   float64
	Chains           int
	HeatStep         float64
	SwapEvery        int
	// ScreenMinArea does not affect chain results (the screen is exact),
	// but a resumed run should do the same work as the original.
	ScreenMinArea float64
}

func snapshotOptions(o Options) OptionsSnapshot {
	return OptionsSnapshot{
		Shape:      o.Shape.String(),
		MeanRadius: o.MeanRadius, ExpectedCount: o.ExpectedCount, Threshold: o.Threshold,
		Iterations: o.Iterations, Workers: o.Workers, Seed: o.Seed,
		LocalPhaseIters: o.LocalPhaseIters, PartitionGrid: o.PartitionGrid,
		SpecWidth: o.SpecWidth, LocalSpecWidth: o.LocalSpecWidth, GridSlack: o.GridSlack,
		SimulateParallel: o.SimulateParallel, Converge: o.Converge,
		OverlapPenalty: o.OverlapPenalty,
		Chains:         o.Chains, HeatStep: o.HeatStep, SwapEvery: o.SwapEvery,
		ScreenMinArea: o.ScreenMinArea,
	}
}

func (s OptionsSnapshot) toOptions(strategy Strategy) (Options, error) {
	shape := Discs
	if s.Shape != "" {
		var err error
		if shape, err = ParseShape(s.Shape); err != nil {
			return Options{}, fmt.Errorf("parmcmc: checkpoint for unknown shape %q", s.Shape)
		}
	}
	return Options{
		Strategy:   strategy,
		Shape:      shape,
		MeanRadius: s.MeanRadius, ExpectedCount: s.ExpectedCount, Threshold: s.Threshold,
		Iterations: s.Iterations, Workers: s.Workers, Seed: s.Seed,
		LocalPhaseIters: s.LocalPhaseIters, PartitionGrid: s.PartitionGrid,
		SpecWidth: s.SpecWidth, LocalSpecWidth: s.LocalSpecWidth, GridSlack: s.GridSlack,
		SimulateParallel: s.SimulateParallel, Converge: s.Converge,
		OverlapPenalty: s.OverlapPenalty,
		Chains:         s.Chains, HeatStep: s.HeatStep, SwapEvery: s.SwapEvery,
		ScreenMinArea: s.ScreenMinArea,
	}, nil
}

// hashImage fingerprints the clamped pixel buffer (FNV-1a over the bit
// patterns plus the dimensions).
func hashImage(im *imaging.Image) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		for _, x := range b {
			h ^= uint64(x)
			h *= prime64
		}
	}
	mix(uint64(im.W))
	mix(uint64(im.H))
	for _, p := range im.Pix {
		mix(math.Float64bits(p))
	}
	return h
}

// MarshalBinary serializes the checkpoint (encoding/gob).
func (cp *Checkpoint) MarshalBinary() ([]byte, error) {
	// The method-free alias keeps gob from recursing into
	// MarshalBinary itself.
	type wire Checkpoint
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode((*wire)(cp)); err != nil {
		return nil, fmt.Errorf("parmcmc: encoding checkpoint: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary deserializes a checkpoint written by MarshalBinary.
func (cp *Checkpoint) UnmarshalBinary(data []byte) error {
	type wire Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode((*wire)(cp)); err != nil {
		return fmt.Errorf("parmcmc: decoding checkpoint: %w", err)
	}
	if cp.Version != checkpointVersion {
		return fmt.Errorf("parmcmc: unsupported checkpoint version %d", cp.Version)
	}
	return nil
}

// encodePayload / decodePayload gob-round-trip a strategy's private
// checkpoint payload.
func encodePayload(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("parmcmc: encoding strategy payload: %w", err)
	}
	return buf.Bytes(), nil
}

func decodePayload(data []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("parmcmc: decoding strategy payload: %w", err)
	}
	return nil
}

// buildCheckpoint assembles a Checkpoint around the sampler's payload.
func buildCheckpoint(env *runEnv, smp sampler, elapsed time.Duration) (*Checkpoint, error) {
	def, err := strategyFor(env.opt.Strategy)
	if err != nil {
		return nil, err
	}
	data, err := smp.Checkpoint()
	if err != nil {
		return nil, err
	}
	return &Checkpoint{
		Version:  checkpointVersion,
		Strategy: def.name,
		W:        env.im.W, H: env.im.H,
		PixHash: env.hash(),
		Elapsed: elapsed,
		Options: snapshotOptions(env.opt),
		Data:    data,
	}, nil
}

// DetectResume continues a checkpointed detection over the same pixel
// buffer the original run was given, to completion, and returns a
// Result bit-identical (circles, log-posterior, iteration and
// acceptance accounting) to the uninterrupted run's. Chain-affecting
// options come from the checkpoint; only the callbacks (Observer,
// OnCheckpoint, CheckpointEvery) and a positive Workers override are
// taken from opt — worker counts never affect results.
func DetectResume(ctx context.Context, pix []float64, w, h int, opt Options, cp *Checkpoint) (*Result, error) {
	if cp == nil {
		return nil, fmt.Errorf("parmcmc: nil checkpoint")
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("parmcmc: unsupported checkpoint version %d", cp.Version)
	}
	def, ok := strategiesByName[cp.Strategy]
	if !ok {
		return nil, fmt.Errorf("parmcmc: checkpoint for unknown strategy %q", cp.Strategy)
	}
	ro, err := cp.Options.toOptions(def.value)
	if err != nil {
		return nil, err
	}
	ro.Observer = opt.Observer
	ro.OnCheckpoint = opt.OnCheckpoint
	ro.CheckpointEvery = opt.CheckpointEvery
	if opt.Workers > 0 {
		ro.Workers = opt.Workers
	}
	env, err := newRunEnv(pix, w, h, ro)
	if err != nil {
		return nil, err
	}
	if env.im.W != cp.W || env.im.H != cp.H || env.hash() != cp.PixHash {
		return nil, fmt.Errorf("parmcmc: checkpoint does not match this image (%dx%d, hash %x; checkpoint %dx%d, hash %x)",
			env.im.W, env.im.H, env.hash(), cp.W, cp.H, cp.PixHash)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	smp, err := def.factory(env)
	if err != nil {
		return nil, err
	}
	if err := smp.Resume(cp.Data); err != nil {
		return nil, err
	}
	return drive(ctx, env, smp, cp.Elapsed)
}
