package parmcmc

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden checkpoint fixtures under testdata/")

// goldenScene / goldenOptions pin the run that produced the committed
// checkpoint fixtures. Changing either without -update invalidates the
// v2 fixture's PixHash and the test will say so loudly.
var goldenScene = SceneSpec{W: 96, H: 96, Count: 5, MeanRadius: 7, Noise: 0.05, Seed: 3}

func goldenOptions() Options {
	return Options{Strategy: Sequential, MeanRadius: 7, Iterations: 16000, Seed: 11}
}

const (
	goldenV2 = "checkpoint_v2.golden"
	goldenV1 = "checkpoint_v1.golden"
)

// regenGoldenCheckpoints reruns the pinned detection, captures its first
// mid-run checkpoint as the v2 fixture, and derives the v1 fixture from
// it by stamping Version 1 — structurally plausible, but behind the
// version gate, which is exactly what the compat contract tests.
func regenGoldenCheckpoints(t *testing.T, pix []float64) {
	t.Helper()
	var first []byte
	opt := goldenOptions()
	opt.OnCheckpoint = func(cp *Checkpoint) {
		if first != nil {
			return
		}
		blob, err := cp.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal golden checkpoint: %v", err)
		}
		first = blob
	}
	if _, err := Detect(pix, goldenScene.W, goldenScene.H, opt); err != nil {
		t.Fatal(err)
	}
	if first == nil {
		t.Fatal("golden run emitted no mid-run checkpoint; enlarge Iterations")
	}
	var cp Checkpoint
	if err := cp.UnmarshalBinary(first); err != nil {
		t.Fatal(err)
	}
	cp.Version = 1
	v1, err := cp.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	for name, blob := range map[string][]byte{goldenV2: first, goldenV1: v1} {
		if err := os.WriteFile(filepath.Join("testdata", name), blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("rewrote testdata/%s (%d bytes) and testdata/%s (%d bytes)", goldenV2, len(first), goldenV1, len(v1))
}

// The committed v2 fixture is the compatibility contract for the
// current checkpoint format: any change to the gob wire shape, the
// OptionsSnapshot fields, or the strategy payload that breaks decoding
// of ALREADY-PERSISTED checkpoints fails here — before it strands every
// spool in the field. The resumed run must also still be bit-identical
// to the uninterrupted one.
func TestGoldenCheckpointV2ResumesBitIdentical(t *testing.T) {
	pix, _ := GenerateScene(goldenScene)
	if *updateGolden {
		regenGoldenCheckpoints(t, pix)
	}
	blob, err := os.ReadFile(filepath.Join("testdata", goldenV2))
	if err != nil {
		t.Fatalf("reading golden fixture (regenerate with -update): %v", err)
	}
	var cp Checkpoint
	if err := cp.UnmarshalBinary(blob); err != nil {
		t.Fatalf("committed v2 checkpoint no longer decodes — the wire format changed incompatibly: %v", err)
	}
	baseline, err := Detect(pix, goldenScene.W, goldenScene.H, goldenOptions())
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := DetectResume(context.Background(), pix, goldenScene.W, goldenScene.H, Options{}, &cp)
	if err != nil {
		t.Fatalf("committed v2 checkpoint no longer resumes: %v", err)
	}
	mustEqualResults(t, "golden-v2", baseline, resumed)
}

// A v1 checkpoint must be rejected LOUDLY, by version number, at both
// entry points. v1 predates the Circle→Ellipse configuration change;
// its gob payload would decode into the current structs with every
// radius silently zeroed, so "upgrade" deliberately means refuse +
// restart from scratch (pkg/service turns this into a scratch
// recovery), never a quiet wrong answer.
func TestGoldenCheckpointV1RejectedLoudly(t *testing.T) {
	blob, err := os.ReadFile(filepath.Join("testdata", goldenV1))
	if err != nil {
		t.Fatalf("reading golden fixture (regenerate with -update): %v", err)
	}
	var cp Checkpoint
	err = cp.UnmarshalBinary(blob)
	if err == nil {
		t.Fatal("v1 checkpoint decoded without error")
	}
	if !strings.Contains(err.Error(), "unsupported checkpoint version 1") {
		t.Fatalf("v1 rejection is not loud/specific: %v", err)
	}

	// DetectResume double-checks the version even on a hand-built
	// Checkpoint value that bypassed UnmarshalBinary.
	pix, _ := GenerateScene(goldenScene)
	_, err = DetectResume(context.Background(), pix, goldenScene.W, goldenScene.H, Options{}, &Checkpoint{Version: 1})
	if err == nil || !strings.Contains(err.Error(), "unsupported checkpoint version 1") {
		t.Fatalf("DetectResume accepted or mis-reported a v1 checkpoint: %v", err)
	}
}
