package parmcmc

import (
	"image"
	"image/color"
	"math"
	"testing"
)

func testScene(t *testing.T) ([]float64, []Circle, int, int) {
	t.Helper()
	pix, truth := GenerateScene(SceneSpec{
		W: 128, H: 128, Count: 5, MeanRadius: 8, Noise: 0.05, Seed: 7,
	})
	return pix, truth, 128, 128
}

func TestDetectValidation(t *testing.T) {
	if _, err := Detect(nil, 0, 0, Options{MeanRadius: 5}); err == nil {
		t.Fatal("empty image accepted")
	}
	if _, err := Detect(make([]float64, 10), 5, 3, Options{MeanRadius: 5}); err == nil {
		t.Fatal("mismatched length accepted")
	}
	if _, err := Detect(make([]float64, 15), 5, 3, Options{}); err == nil {
		t.Fatal("missing MeanRadius accepted")
	}
}

func TestDetectDoesNotMutateInput(t *testing.T) {
	pix, _, w, h := testScene(t)
	orig := append([]float64(nil), pix...)
	_, err := Detect(pix, w, h, Options{MeanRadius: 8, Iterations: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pix {
		if pix[i] != orig[i] {
			t.Fatal("Detect mutated the caller's pixels")
		}
	}
}

func TestAllStrategiesDetect(t *testing.T) {
	pix, truth, w, h := testScene(t)
	for _, s := range Strategies() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			res, err := Detect(pix, w, h, Options{
				Strategy: s, MeanRadius: 8, Iterations: 30000, Seed: 3,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Strategy != s {
				t.Fatalf("result strategy %v", res.Strategy)
			}
			_, recall, f1 := MatchScore(res.Circles, truth, 4)
			if recall < 0.8 {
				t.Fatalf("%v recall = %v (found %d of %d)", s, recall, len(res.Circles), len(truth))
			}
			if f1 < 0.7 {
				t.Fatalf("%v F1 = %v", s, f1)
			}
			if res.Iterations == 0 || res.Elapsed <= 0 {
				t.Fatalf("missing run metadata: %+v", res)
			}
		})
	}
}

func TestStrategyNames(t *testing.T) {
	for _, s := range Strategies() {
		parsed, err := ParseStrategy(s.String())
		if err != nil || parsed != s {
			t.Fatalf("roundtrip failed for %v", s)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Fatal("bogus strategy parsed")
	}
	if Strategy(99).String() == "" {
		t.Fatal("unknown strategy has empty name")
	}
}

func TestExpectedCountEstimation(t *testing.T) {
	pix, truth, w, h := testScene(t)
	// With ExpectedCount unset, eq. 5 should land near the truth count
	// and detection still works.
	res, err := Detect(pix, w, h, Options{
		Strategy: Sequential, MeanRadius: 8, Iterations: 30000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(len(res.Circles))-float64(len(truth))) > 2 {
		t.Fatalf("found %d circles, truth %d", len(res.Circles), len(truth))
	}
}

func TestDetectImage(t *testing.T) {
	pix, truth, w, h := testScene(t)
	img := image.NewGray(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			img.SetGray(x, y, color.Gray{Y: uint8(pix[y*w+x]*255 + 0.5)})
		}
	}
	res, err := DetectImage(img, Options{
		Strategy: Sequential, MeanRadius: 8, Iterations: 30000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, recall, _ := MatchScore(res.Circles, truth, 4)
	if recall < 0.8 {
		t.Fatalf("DetectImage recall = %v", recall)
	}
}

func TestGenerateSceneDeterministic(t *testing.T) {
	a, ta := GenerateScene(SceneSpec{W: 64, H: 64, Count: 3, MeanRadius: 6, Seed: 1})
	b, tb := GenerateScene(SceneSpec{W: 64, H: 64, Count: 3, MeanRadius: 6, Seed: 1})
	if len(ta) != len(tb) {
		t.Fatal("truth differs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("pixels differ")
		}
	}
}

func TestMatchScorePerfect(t *testing.T) {
	truth := []Circle{{X: 10, Y: 10, R: 5}}
	p, r, f1 := MatchScore(truth, truth, 2)
	if p != 1 || r != 1 || f1 != 1 {
		t.Fatalf("perfect score = %v %v %v", p, r, f1)
	}
}

// TestAllStrategiesDetectEllipses runs the whole strategy registry over
// an elliptical-nuclei scene through the same generic drive loop — no
// strategy has shape-specific code, so every one must find the
// artifacts and report genuine (non-circular) shape parameters.
func TestAllStrategiesDetectEllipses(t *testing.T) {
	const w, h = 150, 150
	pix, truth := GenerateSceneShapes(SceneSpec{
		W: w, H: h, Count: 9, MeanRadius: 8, Noise: 0.05, Seed: 6,
		Shape: Ellipses,
	})
	if len(truth) < 6 {
		t.Fatalf("scene placed only %d artifacts", len(truth))
	}
	elliptical := 0
	for _, e := range truth {
		if e.Rx != e.Ry {
			elliptical++
		}
	}
	if elliptical == 0 {
		t.Fatal("ellipse scene generated only discs")
	}
	for _, s := range Strategies() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			if testing.Short() && s != Sequential && s != Periodic {
				t.Skip("short mode: sequential and periodic only")
			}
			res, err := Detect(pix, w, h, Options{
				Strategy: s, Shape: Ellipses, MeanRadius: 8, Iterations: 30000, Seed: 3,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Ellipses) != len(res.Circles) {
				t.Fatalf("Ellipses/Circles length mismatch: %d vs %d", len(res.Ellipses), len(res.Circles))
			}
			_, recall, f1 := MatchScoreShapes(res.Ellipses, truth, 4)
			if recall < 0.7 {
				t.Fatalf("%v recall = %v (found %d of %d)", s, recall, len(res.Ellipses), len(truth))
			}
			if f1 < 0.6 {
				t.Fatalf("%v F1 = %v", s, f1)
			}
			// The sampler must actually use the extra degrees of freedom.
			nonCircular := 0
			for _, e := range res.Ellipses {
				if e.Rx != e.Ry {
					nonCircular++
				}
			}
			if nonCircular == 0 {
				t.Fatalf("%v: every detection is a perfect disc — axis moves never accepted?", s)
			}
		})
	}
}

// TestShapeNames pins the registry round trip for shapes, mirroring
// TestStrategyNames.
func TestShapeNames(t *testing.T) {
	kinds := ShapeKinds()
	if len(kinds) < 2 {
		t.Fatalf("expected at least 2 shape kinds, got %d", len(kinds))
	}
	for _, s := range kinds {
		name := s.String()
		back, err := ParseShape(name)
		if err != nil {
			t.Fatalf("ParseShape(%q): %v", name, err)
		}
		if back != s {
			t.Fatalf("round trip %v -> %q -> %v", s, name, back)
		}
	}
	if _, err := ParseShape("hexagon"); err == nil {
		t.Fatal("ParseShape accepted an unknown name")
	}
	if _, err := Detect(make([]float64, 16), 4, 4, Options{MeanRadius: 2, Shape: Shape(42)}); err == nil {
		t.Fatal("Detect accepted an unregistered shape")
	}
}

// TestDiscRunsHaveCircularEllipses: disc-mode results carry the generic
// shape list too, with Rx == Ry == R.
func TestDiscRunsHaveCircularEllipses(t *testing.T) {
	pix, _, w, h := testScene(t)
	res, err := Detect(pix, w, h, Options{MeanRadius: 8, Iterations: 8000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ellipses) != len(res.Circles) {
		t.Fatalf("Ellipses/Circles length mismatch")
	}
	for i, e := range res.Ellipses {
		if e.Rx != e.Ry || e.Theta != 0 {
			t.Fatalf("disc run produced non-circular ellipse %+v", e)
		}
		if res.Circles[i].R != e.Rx {
			t.Fatalf("circle/ellipse radius mismatch at %d", i)
		}
	}
}
