package parmcmc

import (
	"context"
	"fmt"
	"math"

	"repro/internal/mcmc"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/rng"
)

func init() {
	registerStrategy(Sequential, "sequential", newSequentialSampler)
}

// newSequentialSampler builds the baseline whole-image sampler — the
// fixed-length chain, or a convergence-terminated chain when
// Options.Converge is set.
func newSequentialSampler(env *runEnv) (sampler, error) {
	if env.opt.Converge {
		chain, err := partition.NewChain(env.im, env.im.Bounds(), env.partitionConfig(), rng.New(env.opt.Seed))
		if err != nil {
			return nil, err
		}
		return &convergeSampler{env: env, chain: chain}, nil
	}
	s, err := model.NewState(env.im, env.params)
	if err != nil {
		return nil, err
	}
	e, err := mcmc.New(s, rng.New(env.opt.Seed), env.weights, env.steps)
	if err != nil {
		return nil, err
	}
	e.ScreenMinArea = env.opt.ScreenMinArea
	return &seqSampler{env: env, e: e}, nil
}

// seqSampler is the plain fixed-length reversible-jump chain.
type seqSampler struct {
	env *runEnv
	e   *mcmc.Engine
}

func (sp *seqSampler) AlignChunk(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

func (sp *seqSampler) Step(_ context.Context, n int) (bool, error) {
	total := int64(sp.env.opt.Iterations)
	if rem := total - sp.e.Iter; int64(n) > rem {
		n = int(rem)
	}
	if n > 0 {
		sp.e.RunN(n)
	}
	return sp.e.Iter >= total, nil
}

func (sp *seqSampler) Snapshot() Progress {
	done := 0
	if sp.e.Iter >= int64(sp.env.opt.Iterations) {
		done = 1
	}
	return Progress{
		Strategy: sp.env.opt.Strategy, Phase: "sampling",
		Iter: sp.e.Iter, Total: int64(sp.env.opt.Iterations),
		LogPost: sp.e.S.LogPost(), NumCircles: sp.e.S.Cfg.Len(),
		AcceptRate: 1 - sp.e.Stats.RejectionRate(),
		Partitions: 1, PartitionsDone: done,
	}
}

func (sp *seqSampler) Finish(res *Result) error {
	fill(res, sp.e.S.Cfg.Circles(), sp.e.S.LogPost(), sp.e.Iter)
	fillEngineStats(res, &sp.e.Stats)
	return nil
}

// seqDump is the sequential strategy's checkpoint payload.
type seqDump struct {
	Eng mcmc.EngineDump
}

func (sp *seqSampler) Checkpoint() ([]byte, error) {
	return encodePayload(seqDump{Eng: sp.e.Dump()})
}

func (sp *seqSampler) Resume(data []byte) error {
	var d seqDump
	if err := decodePayload(data, &d); err != nil {
		return err
	}
	return sp.e.Restore(d.Eng)
}

// convergeSampler terminates the whole-image chain at plateau
// convergence (capped at Iterations) and reports region metadata, like
// the partitioned strategies do.
type convergeSampler struct {
	env   *runEnv
	chain *partition.Chain
}

func (sp *convergeSampler) AlignChunk(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

func (sp *convergeSampler) Step(_ context.Context, n int) (bool, error) {
	sp.chain.Advance(n)
	return sp.chain.Done(), nil
}

func (sp *convergeSampler) Snapshot() Progress {
	phase := "burn-in"
	done := 0
	if sp.chain.Done() {
		done = 1
		phase = "capped"
		if sp.chain.Converged() {
			phase = "converged"
		}
	}
	p := Progress{
		Strategy: sp.env.opt.Strategy, Phase: phase,
		Iter: sp.chain.Iters(), Total: int64(sp.env.opt.Iterations),
		Partitions: 1, PartitionsDone: done,
	}
	if e := sp.chain.Eng; e != nil {
		p.LogPost = e.S.LogPost()
		p.NumCircles = e.S.Cfg.Len()
		p.AcceptRate = 1 - e.Stats.RejectionRate()
	}
	return p
}

func (sp *convergeSampler) Finish(res *Result) error {
	out := sp.chain.Result()
	logPost := math.NaN()
	if e := sp.chain.Eng; e != nil {
		// The chain spans the whole image under the run's parameters,
		// so its log-posterior is directly comparable across strategies.
		logPost = e.S.LogPost()
	}
	fill(res, out.Circles, logPost, out.Iters)
	res.Regions = []RegionInfo{regionInfo(out)}
	st := sp.chain.Stats()
	fillEngineStats(res, &st)
	return nil
}

// convergeDump is the Converge-mode checkpoint payload.
type convergeDump struct {
	Chain partition.ChainDump
}

func (sp *convergeSampler) Checkpoint() ([]byte, error) {
	return encodePayload(convergeDump{Chain: sp.chain.Dump()})
}

func (sp *convergeSampler) Resume(data []byte) error {
	var d convergeDump
	if err := decodePayload(data, &d); err != nil {
		return err
	}
	if d.Chain.Region != sp.chain.Region {
		return fmt.Errorf("parmcmc: converge checkpoint region %+v does not match %+v",
			d.Chain.Region, sp.chain.Region)
	}
	chain, err := partition.RestoreChain(sp.env.im, sp.env.partitionConfig(), d.Chain)
	if err != nil {
		return err
	}
	sp.chain = chain
	return nil
}
