package parmcmc

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/sched"
)

// Job is one unit of orchestrated work: an image × strategy × config
// detection run, or — when Func is set — an arbitrary computation
// scheduled on the same pool (the experiment harness uses this for
// closed-form figure series).
type Job struct {
	// Name labels the job in results and error messages.
	Name string

	// Pix/W/H and Opt describe a detection run (see Detect).
	Pix  []float64
	W, H int
	Opt  Options

	// Func, when non-nil, replaces the detection run: the job's value is
	// whatever it returns. Pix and Opt are ignored.
	Func func(ctx context.Context) (any, error)
}

// JobResult pairs a job with its outcome. Exactly one of Result, Value
// or Err is meaningful: Result for detection jobs, Value for Func jobs,
// Err when the job failed or was cancelled before completion.
type JobResult struct {
	// Index is the job's position in the submitted batch.
	Index int
	Name  string
	// Seed is the seed the job actually ran with (the per-job derived
	// seed when the job's Options left Seed zero) — enough to re-run any
	// single job of a batch in isolation.
	Seed   uint64
	Result *Result
	Value  any
	Err    error
}

// Runner fans batches of jobs out across a bounded worker pool and
// streams structured results back. A Runner's pool is shared by every
// Run and Stream call made on it, so concurrent batches cannot
// oversubscribe the configured concurrency. Jobs never share mutable
// state, so results are deterministic for fixed seeds regardless of the
// concurrency or the order in which jobs complete.
type Runner struct {
	// BaseSeed derives deterministic per-job seeds for jobs whose
	// Options leave Seed zero (default 1). Jobs at different indices get
	// distinct seeds; the derivation is stable across runs and
	// concurrency levels.
	BaseSeed uint64

	// GCBetween forces a garbage collection before each job starts —
	// with concurrency 1 this keeps earlier jobs' garbage out of
	// wall-clock measurements, which is how the experiment harness runs
	// its timed figure batches.
	GCBetween bool

	pool *sched.Pool
}

// NewRunner returns a Runner admitting at most `concurrency` jobs in
// flight (0 = GOMAXPROCS). Each job's own Options.Workers additionally
// bounds its internal parallelism.
func NewRunner(concurrency int) *Runner {
	if concurrency <= 0 {
		concurrency = runtime.GOMAXPROCS(0)
	}
	return &Runner{BaseSeed: 1, pool: sched.NewPool(concurrency)}
}

// Concurrency returns the runner's job-level concurrency bound.
func (r *Runner) Concurrency() int { return r.pool.Workers() }

// jobSeed derives the seed for the job at index i: the job's own seed
// when set, otherwise DeriveSeed of BaseSeed and the 1-based index.
func (r *Runner) jobSeed(i int, opt Options) uint64 {
	if opt.Seed != 0 {
		return opt.Seed
	}
	return DeriveSeed(r.BaseSeed, uint64(i)+1)
}

// DeriveSeed mixes a base seed with a 1-based sequence number into a
// deterministic, never-zero per-job seed (a SplitMix64-style mix).
// It is the single derivation shared by Runner batches and the
// pkg/service daemon, so "job n under base seed b" means the same
// thing everywhere.
func DeriveSeed(base, n uint64) uint64 {
	z := base + n*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// Stream dispatches the batch in index order over the runner's pool and
// returns a channel delivering one JobResult per job in completion
// order. The channel closes when every job has been accounted for. On
// cancellation, jobs not yet started are reported with ctx's error;
// running detection jobs stop at their next cancellation check.
func (r *Runner) Stream(ctx context.Context, jobs []Job) <-chan JobResult {
	out := make(chan JobResult, len(jobs))
	go func() {
		defer close(out)
		var wg sync.WaitGroup
		for i := range jobs {
			job := jobs[i]
			jr := JobResult{Index: i, Name: job.Name}
			if job.Func == nil {
				jr.Seed = r.jobSeed(i, job.Opt)
			}
			if err := r.pool.Acquire(ctx); err != nil {
				jr.Err = err
				out <- jr
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer r.pool.Release()
				if r.GCBetween {
					runtime.GC()
				}
				if job.Func != nil {
					jr.Value, jr.Err = job.Func(ctx)
				} else {
					opt := job.Opt
					opt.Seed = jr.Seed
					jr.Result, jr.Err = DetectContext(ctx, job.Pix, job.W, job.H, opt)
				}
				out <- jr
			}()
		}
		wg.Wait()
	}()
	return out
}

// Run executes the batch and returns one JobResult per job, in job
// order. Per-job failures are reported in JobResult.Err; the returned
// error is non-nil only when the batch was cut short by ctx, in which
// case the results still account for every job.
func (r *Runner) Run(ctx context.Context, jobs []Job) ([]JobResult, error) {
	results := make([]JobResult, 0, len(jobs))
	for jr := range r.Stream(ctx, jobs) {
		results = append(results, jr)
	}
	sort.Slice(results, func(a, b int) bool { return results[a].Index < results[b].Index })
	return results, ctx.Err()
}

// Sweep enumerates the cartesian product of option axes over one image
// into a deterministic job list — the "one sweep + one reducer" shape
// every figure of the paper reduces to. A nil axis keeps the Base
// value; axes nest in field order (Strategies outermost, Seeds
// innermost), so enumeration order is reproducible. Multi-image batches
// are built by concatenating the Jobs of several Sweeps.
type Sweep struct {
	// Name prefixes every job name.
	Name string

	// Pix/W/H is the image every enumerated job runs on.
	Pix  []float64
	W, H int

	// Base supplies every option not being swept.
	Base Options

	Strategies      []Strategy
	Workers         []int
	PartitionGrids  []int
	LocalPhaseIters []int
	SpecWidths      []int
	Iterations      []int
	Chains          []int
	HeatSteps       []float64
	Seeds           []uint64
}

// sweepAxis is one enumerable dimension of a Sweep: how many values it
// has, how a value labels the job name, and how it lands in Options.
type sweepAxis struct {
	label string
	count int
	value func(i int) any
	apply func(o *Options, i int)
}

// axes returns the sweep's dimensions in nesting order; unswept axes
// (empty slices) are omitted, leaving the Base value in place.
func (s Sweep) axes() []sweepAxis {
	all := []sweepAxis{
		{"", len(s.Strategies),
			func(i int) any { return s.Strategies[i] },
			func(o *Options, i int) { o.Strategy = s.Strategies[i] }},
		{"workers", len(s.Workers),
			func(i int) any { return s.Workers[i] },
			func(o *Options, i int) { o.Workers = s.Workers[i] }},
		{"grid", len(s.PartitionGrids),
			func(i int) any { return s.PartitionGrids[i] },
			func(o *Options, i int) { o.PartitionGrid = s.PartitionGrids[i] }},
		{"local", len(s.LocalPhaseIters),
			func(i int) any { return s.LocalPhaseIters[i] },
			func(o *Options, i int) { o.LocalPhaseIters = s.LocalPhaseIters[i] }},
		{"spec", len(s.SpecWidths),
			func(i int) any { return s.SpecWidths[i] },
			func(o *Options, i int) { o.SpecWidth = s.SpecWidths[i] }},
		{"iters", len(s.Iterations),
			func(i int) any { return s.Iterations[i] },
			func(o *Options, i int) { o.Iterations = s.Iterations[i] }},
		{"chains", len(s.Chains),
			func(i int) any { return s.Chains[i] },
			func(o *Options, i int) { o.Chains = s.Chains[i] }},
		{"heat", len(s.HeatSteps),
			func(i int) any { return s.HeatSteps[i] },
			func(o *Options, i int) { o.HeatStep = s.HeatSteps[i] }},
		{"seed", len(s.Seeds),
			func(i int) any { return s.Seeds[i] },
			func(o *Options, i int) { o.Seed = s.Seeds[i] }},
	}
	var swept []sweepAxis
	for _, a := range all {
		if a.count > 0 {
			swept = append(swept, a)
		}
	}
	return swept
}

// Jobs expands the sweep into its job list: the cartesian product of
// the swept axes, enumerated odometer-style with the last axis moving
// fastest.
func (s Sweep) Jobs() []Job {
	axes := s.axes()
	total := 1
	for _, a := range axes {
		total *= a.count
	}
	jobs := make([]Job, 0, total)
	idx := make([]int, len(axes))
	for {
		opt := s.Base
		name := s.Name
		for k, a := range axes {
			a.apply(&opt, idx[k])
			seg := fmt.Sprint(a.value(idx[k]))
			if a.label != "" {
				seg = fmt.Sprintf("%s=%v", a.label, a.value(idx[k]))
			}
			if name != "" {
				name += "/"
			}
			name += seg
		}
		jobs = append(jobs, Job{Name: name, Pix: s.Pix, W: s.W, H: s.H, Opt: opt})
		k := len(axes) - 1
		for ; k >= 0; k-- {
			idx[k]++
			if idx[k] < axes[k].count {
				break
			}
			idx[k] = 0
		}
		if k < 0 {
			return jobs
		}
	}
}
