package parmcmc

// Progress is a read-only snapshot of a running detection, streamed to
// Options.Observer at chunk boundaries (every few thousand iterations).
// Snapshots are taken on the goroutine driving the run, between chunks,
// so observing never races with the sampler and never perturbs it: a
// run with an observer attached is bit-identical to one without.
type Progress struct {
	Strategy Strategy
	// Phase is a short human-readable description of the run's current
	// stage (strategy-specific: "sampling", "cycle 12", "regions 3/7",
	// "swap 40/200", ...).
	Phase string

	// Iter is the aggregate number of chain iterations performed so
	// far, summed over partitions/chains; Total the run's iteration
	// budget under the same accounting (0 when the strategy's total is
	// not known up front).
	Iter, Total int64

	// LogPost is the current relative log-posterior: the whole-image
	// chain's for whole-image strategies, the cold chain's for
	// Tempered, and the sum over region chains for partitioned
	// strategies (comparable only within the same run phase).
	LogPost float64
	// NumCircles counts artifacts in the current configuration(s).
	NumCircles int
	// AcceptRate is the fraction of proposals accepted so far.
	AcceptRate float64

	// Partitions counts the run's regions/chains; PartitionsDone how
	// many have converged or hit their cap (whole-image strategies
	// report 1 and 0-or-1).
	Partitions, PartitionsDone int

	// Speculative-executor telemetry, populated only by the
	// PeriodicSpeculative strategy: the width the next batch will run at
	// (the adaptive controller's current pick, or the fixed width) and
	// the measured consumed-iterations-per-batch so far — the realized
	// eq. 3 speedup, 1 meaning speculation never helped. Telemetry only:
	// the sampled chain is identical for every width schedule.
	SpecWidth   int
	SpecSpeedup float64
}
