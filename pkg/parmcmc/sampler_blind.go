package parmcmc

import (
	"context"

	"repro/internal/geom"
	"repro/internal/partition"
)

func init() {
	registerStrategy(Blind, "blind", newBlindSampler)
}

// blindOptions derives the §VIII blind-partitioning parameters from the
// public options: the paper's overlap margin ("1.1× the expected
// artifact radius") and merge radius ("say 5 pixels").
func blindOptions(o Options) partition.BlindOptions {
	return partition.BlindOptions{
		NX: o.PartitionGrid, NY: o.PartitionGrid,
		Margin:       1.1 * o.MeanRadius,
		MergeRadius:  5,
		KeepDisputed: true,
	}
}

// newBlindSampler builds the §VIII blind-partitioning sampler: an
// overlapping grid of independent chains plus the heuristic post-merge.
func newBlindSampler(env *runEnv) (sampler, error) {
	opt := blindOptions(env.opt)
	cores, expanded := partition.BlindRegions(env.im.Bounds(), opt)
	rr, err := newRegionRunner(env, expanded)
	if err != nil {
		return nil, err
	}
	return &blindSampler{regionRunner: rr, opt: opt, cores: cores, expanded: expanded}, nil
}

type blindSampler struct {
	regionRunner
	opt             partition.BlindOptions
	cores, expanded []geom.Rect
}

func (sp *blindSampler) Step(ctx context.Context, n int) (bool, error) {
	return sp.step(ctx, n)
}

func (sp *blindSampler) Snapshot() Progress { return sp.progress() }

func (sp *blindSampler) Finish(res *Result) error {
	merged := partition.MergeBlind(sp.cores, sp.expanded, sp.results(), sp.opt)
	// Score the merged model against the whole image for a cross-
	// strategy-comparable log-posterior.
	fill(res, merged.Circles, sp.env.scoreCircles(merged.Circles), 0)
	sp.finishRegions(res, merged.Regions)
	res.Merged = merged.Merged
	res.Disputed = merged.Disputed
	return nil
}

func (sp *blindSampler) Checkpoint() ([]byte, error) { return sp.checkpoint() }
func (sp *blindSampler) Resume(data []byte) error    { return sp.resume(data) }
