// Package parmcmc is the public API of this repository: MCMC-based
// detection of circular artifacts (stained cell nuclei, latex beads) in
// grayscale images, with the parallelisation strategies of Byrd, Jarvis
// & Bhalerao, "On the Parallelisation of MCMC-based Image Processing"
// (IEEE IPDPS workshops, 2010):
//
//   - Sequential: the plain reversible-jump sampler (baseline).
//   - Periodic: periodic partitioning (§V) — statistically exact
//     parallelism over a randomly offset grid.
//   - PeriodicSpeculative: Periodic plus speculative global moves
//     (eq. 3, from the authors' IPDPS'08 paper).
//   - Intelligent: pre-processor cuts along artifact-free bands, then
//     independent chains (§VIII; fast but not statistically exact).
//   - Blind: overlapping grid plus heuristic merge (§VIII).
//   - Tempered: Metropolis-coupled MCMC, the §IV related-work method.
//
// The package deliberately exposes plain float64 pixel buffers and a
// tiny Circle type; the heavy machinery lives in internal packages.
package parmcmc

import (
	"fmt"
	"image"
	"math"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/imaging"
	"repro/internal/mc3"
	"repro/internal/mcmc"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Circle is a detected (or ground-truth) artifact.
type Circle struct {
	X, Y, R float64
}

// Strategy selects the parallelisation method.
type Strategy int

const (
	Sequential Strategy = iota
	Periodic
	PeriodicSpeculative
	Intelligent
	Blind
	Tempered
)

var strategyNames = map[Strategy]string{
	Sequential:          "sequential",
	Periodic:            "periodic",
	PeriodicSpeculative: "periodic+spec",
	Intelligent:         "intelligent",
	Blind:               "blind",
	Tempered:            "mc3",
}

func (s Strategy) String() string {
	if n, ok := strategyNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ParseStrategy converts a name (as printed by String) to a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	for s, n := range strategyNames {
		if n == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("parmcmc: unknown strategy %q", name)
}

// Strategies lists all selectable strategies in order.
func Strategies() []Strategy {
	return []Strategy{Sequential, Periodic, PeriodicSpeculative, Intelligent, Blind, Tempered}
}

// Options configures a detection run. MeanRadius is required; everything
// else has sensible defaults.
type Options struct {
	Strategy Strategy

	// MeanRadius is the expected artifact radius in pixels (required).
	MeanRadius float64
	// ExpectedCount is the prior artifact count λ; 0 estimates it from
	// the image via eq. 5.
	ExpectedCount float64
	// Threshold is the intensity threshold of the eq. 5 estimator
	// (default 0.5).
	Threshold float64

	// Iterations is the chain length for Sequential / Periodic /
	// Tempered runs (default 200 000). Partitioned strategies run each
	// partition to convergence, capped at Iterations.
	Iterations int
	// Workers bounds goroutine parallelism (default GOMAXPROCS).
	Workers int
	// Seed fixes the run's randomness (default 1).
	Seed uint64

	// LocalPhaseIters sets the periodic engine's local phase length
	// (default 300); PartitionGrid the number of grid cells per axis for
	// Periodic and Blind (default 2).
	LocalPhaseIters int
	PartitionGrid   int
	// SpecWidth is the speculation width for PeriodicSpeculative
	// (default 4).
	SpecWidth int
}

func (o Options) withDefaults() Options {
	if o.Threshold == 0 {
		o.Threshold = 0.5
	}
	if o.Iterations == 0 {
		o.Iterations = 200000
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.LocalPhaseIters == 0 {
		o.LocalPhaseIters = 300
	}
	if o.PartitionGrid == 0 {
		o.PartitionGrid = 2
	}
	if o.SpecWidth == 0 {
		o.SpecWidth = 4
	}
	return o
}

// Result is the outcome of a detection run.
type Result struct {
	Strategy   Strategy
	Circles    []Circle
	LogPost    float64 // relative log-posterior (whole-image strategies)
	Iterations int64   // total chain iterations across all partitions
	Elapsed    time.Duration
	// Partitions is the number of regions processed (1 for whole-image
	// strategies).
	Partitions int
}

// Detect runs artifact detection over a grayscale pixel buffer with
// intensities in [0, 1], stored row-major with the given width and
// height.
func Detect(pix []float64, w, h int, opt Options) (*Result, error) {
	if w <= 0 || h <= 0 || len(pix) != w*h {
		return nil, fmt.Errorf("parmcmc: bad image dimensions %dx%d for %d pixels", w, h, len(pix))
	}
	if opt.MeanRadius <= 0 {
		return nil, fmt.Errorf("parmcmc: MeanRadius is required")
	}
	o := opt.withDefaults()
	im := &imaging.Image{W: w, H: h, Pix: append([]float64(nil), pix...)}
	im.Clamp()

	lambda := o.ExpectedCount
	if lambda <= 0 {
		lambda = math.Max(im.EstimateCount(o.Threshold, o.MeanRadius), 0.5)
	}
	params := model.DefaultParams(lambda, o.MeanRadius)
	weights := mcmc.DefaultWeights()
	steps := mcmc.DefaultStepSizes(o.MeanRadius)

	start := time.Now()
	res := &Result{Strategy: o.Strategy, Partitions: 1}
	switch o.Strategy {
	case Sequential:
		s, err := model.NewState(im, params)
		if err != nil {
			return nil, err
		}
		e, err := mcmc.New(s, rng.New(o.Seed), weights, steps)
		if err != nil {
			return nil, err
		}
		e.RunN(o.Iterations)
		fill(res, s.Cfg.Circles(), s.LogPost(), e.Iter)

	case Periodic, PeriodicSpeculative:
		s, err := model.NewState(im, params)
		if err != nil {
			return nil, err
		}
		e, err := mcmc.New(s, rng.New(o.Seed), weights, steps)
		if err != nil {
			return nil, err
		}
		copt := core.Options{
			LocalPhaseIters: o.LocalPhaseIters,
			GridXM:          float64(w) / float64(o.PartitionGrid) * 1.01,
			GridYM:          float64(h) / float64(o.PartitionGrid) * 1.01,
			Workers:         o.Workers,
		}
		if o.Strategy == PeriodicSpeculative {
			copt.SpecWidth = o.SpecWidth
		}
		pe, err := core.NewEngine(e, copt)
		if err != nil {
			return nil, err
		}
		pe.Run(o.Iterations)
		fill(res, s.Cfg.Circles(), s.LogPost(), e.Iter)
		res.Partitions = o.PartitionGrid * o.PartitionGrid

	case Intelligent:
		cfg := partitionConfig(o, params, weights, steps)
		out, err := partition.RunIntelligent(im, cfg, int(2.2*o.MeanRadius), o.Workers)
		if err != nil {
			return nil, err
		}
		var iters int64
		for _, r := range out.Regions {
			iters += r.Iters
		}
		fill(res, out.Circles, math.NaN(), iters)
		res.Partitions = len(out.Regions)

	case Blind:
		cfg := partitionConfig(o, params, weights, steps)
		out, err := partition.RunBlind(im, cfg, partition.BlindOptions{
			NX: o.PartitionGrid, NY: o.PartitionGrid,
			Margin:       1.1 * o.MeanRadius,
			MergeRadius:  5,
			KeepDisputed: true,
		}, o.Workers)
		if err != nil {
			return nil, err
		}
		var iters int64
		for _, r := range out.Regions {
			iters += r.Iters
		}
		fill(res, out.Circles, math.NaN(), iters)
		res.Partitions = len(out.Regions)

	case Tempered:
		mopt := mc3.DefaultOptions()
		mopt.Workers = o.Workers
		sampler, err := mc3.New(im, params, weights, steps, mopt, o.Seed)
		if err != nil {
			return nil, err
		}
		sampler.Run(o.Iterations)
		cold := sampler.Cold()
		fill(res, cold.Cfg.Circles(), cold.LogPost(), int64(o.Iterations))
		res.Partitions = mopt.Chains

	default:
		return nil, fmt.Errorf("parmcmc: unknown strategy %v", o.Strategy)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

func partitionConfig(o Options, params model.Params, w mcmc.Weights, st mcmc.StepSizes) partition.Config {
	return partition.Config{
		Theta:      o.Threshold,
		BaseParams: params,
		Weights:    w,
		Steps:      st,
		MaxIters:   o.Iterations,
		Plateau:    mcmc.PlateauDetector{Window: 12, Tol: 0.5, MinIters: 1500},
		Seed:       o.Seed,
	}
}

func fill(res *Result, circles []geom.Circle, logPost float64, iters int64) {
	res.Circles = make([]Circle, len(circles))
	for i, c := range circles {
		res.Circles[i] = Circle{X: c.X, Y: c.Y, R: c.R}
	}
	res.LogPost = logPost
	res.Iterations = iters
}

// DetectImage converts any image.Image to grayscale and runs Detect.
func DetectImage(img image.Image, opt Options) (*Result, error) {
	b := img.Bounds()
	w, h := b.Dx(), b.Dy()
	pix := make([]float64, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r, g, bb, _ := img.At(b.Min.X+x, b.Min.Y+y).RGBA()
			// Rec. 601 luma from 16-bit channels.
			pix[y*w+x] = (0.299*float64(r) + 0.587*float64(g) + 0.114*float64(bb)) / 65535
		}
	}
	return Detect(pix, w, h, opt)
}

// SceneSpec configures a synthetic test scene.
type SceneSpec struct {
	W, H       int
	Count      int
	MeanRadius float64
	Noise      float64
	// Clusters > 0 clumps the artifacts (the bead layout); 0 spreads
	// them uniformly.
	Clusters int
	Seed     uint64
}

// GenerateScene renders a synthetic micrograph (bright discs on noisy
// background) and returns its pixels plus the ground-truth circles —
// convenient for demos, tests and benchmarking against a known answer.
func GenerateScene(spec SceneSpec) (pix []float64, truth []Circle) {
	scene := imaging.Synthesize(imaging.SceneSpec{
		W: spec.W, H: spec.H, Count: spec.Count,
		MeanRadius: spec.MeanRadius, RadiusStdDev: spec.MeanRadius * 0.1,
		Noise: spec.Noise, Clusters: spec.Clusters,
		MinSeparation: 1.05,
	}, rng.New(spec.Seed+1))
	truth = make([]Circle, len(scene.Truth))
	for i, c := range scene.Truth {
		truth[i] = Circle{X: c.X, Y: c.Y, R: c.R}
	}
	return scene.Image.Pix, truth
}

// MatchScore scores detections against ground truth and returns
// (precision, recall, F1) with matches allowed up to maxDist pixels.
func MatchScore(found, truth []Circle, maxDist float64) (precision, recall, f1 float64) {
	fs := make([]geom.Circle, len(found))
	for i, c := range found {
		fs[i] = geom.Circle{X: c.X, Y: c.Y, R: c.R}
	}
	ts := make([]geom.Circle, len(truth))
	for i, c := range truth {
		ts[i] = geom.Circle{X: c.X, Y: c.Y, R: c.R}
	}
	m := stats.MatchCircles(fs, ts, maxDist)
	return m.Precision(), m.Recall(), m.F1()
}
