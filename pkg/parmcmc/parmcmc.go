// Package parmcmc is the public API of this repository: MCMC-based
// detection of circular artifacts (stained cell nuclei, latex beads) in
// grayscale images, with the parallelisation strategies of Byrd, Jarvis
// & Bhalerao, "On the Parallelisation of MCMC-based Image Processing"
// (IEEE IPDPS workshops, 2010):
//
//   - Sequential: the plain reversible-jump sampler (baseline).
//   - Periodic: periodic partitioning (§V) — statistically exact
//     parallelism over a randomly offset grid.
//   - PeriodicSpeculative: Periodic plus speculative global moves
//     (eq. 3, from the authors' IPDPS'08 paper).
//   - Intelligent: pre-processor cuts along artifact-free bands, then
//     independent chains (§VIII; fast but not statistically exact).
//   - Blind: overlapping grid plus heuristic merge (§VIII).
//   - Tempered: Metropolis-coupled MCMC, the §IV related-work method.
//
// The package deliberately exposes plain float64 pixel buffers and a
// tiny Circle type; the heavy machinery lives in internal packages.
package parmcmc

import (
	"context"
	"fmt"
	"image"
	"math"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/imaging"
	"repro/internal/mc3"
	"repro/internal/mcmc"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Circle is a detected (or ground-truth) artifact.
type Circle struct {
	X, Y, R float64
}

// Strategy selects the parallelisation method.
type Strategy int

const (
	Sequential Strategy = iota
	Periodic
	PeriodicSpeculative
	Intelligent
	Blind
	Tempered
)

var strategyNames = map[Strategy]string{
	Sequential:          "sequential",
	Periodic:            "periodic",
	PeriodicSpeculative: "periodic+spec",
	Intelligent:         "intelligent",
	Blind:               "blind",
	Tempered:            "mc3",
}

func (s Strategy) String() string {
	if n, ok := strategyNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ParseStrategy converts a name (as printed by String) to a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	for s, n := range strategyNames {
		if n == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("parmcmc: unknown strategy %q", name)
}

// Strategies lists all selectable strategies in order.
func Strategies() []Strategy {
	return []Strategy{Sequential, Periodic, PeriodicSpeculative, Intelligent, Blind, Tempered}
}

// Options configures a detection run. MeanRadius is required; everything
// else has sensible defaults.
type Options struct {
	Strategy Strategy

	// MeanRadius is the expected artifact radius in pixels (required).
	MeanRadius float64
	// ExpectedCount is the prior artifact count λ; 0 estimates it from
	// the image via eq. 5.
	ExpectedCount float64
	// Threshold is the intensity threshold of the eq. 5 estimator
	// (default 0.5).
	Threshold float64

	// Iterations is the chain length for Sequential / Periodic /
	// Tempered runs (default 200 000). Partitioned strategies run each
	// partition to convergence, capped at Iterations.
	Iterations int
	// Workers bounds goroutine parallelism (default GOMAXPROCS).
	Workers int
	// Seed fixes the run's randomness (default 1).
	Seed uint64

	// LocalPhaseIters sets the periodic engine's local phase length
	// (default 300); PartitionGrid the number of grid cells per axis for
	// Periodic and Blind (default 2).
	LocalPhaseIters int
	PartitionGrid   int
	// SpecWidth is the speculation width for PeriodicSpeculative
	// (default 4).
	SpecWidth int
	// LocalSpecWidth > 1 additionally runs speculative batches inside
	// each periodic partition worker (eq. 4's per-machine threads).
	LocalSpecWidth int
	// GridSlack scales the periodic grid spacing (default 1.01, i.e.
	// slightly wider than image/PartitionGrid). Set 1.0 for the exact
	// image/PartitionGrid spacing the paper's fig. 2 layout uses.
	GridSlack float64
	// SimulateParallel times periodic local-phase cells individually and
	// reports the makespan a Workers-way machine would achieve in
	// Result.SimLocalSeconds — the DESIGN.md §7 device for evaluating
	// parallel runtimes on hosts with fewer cores than the experiment
	// models. Chain results are unaffected.
	SimulateParallel bool

	// Converge makes a Sequential run terminate at plateau convergence
	// (capped at Iterations) and report per-region convergence metadata,
	// like the partitioned strategies do. Ignored by other strategies,
	// which already run each partition to convergence.
	Converge bool
	// OverlapPenalty overrides the prior's pairwise-overlap penalty γ
	// when positive (default: the model's standard value).
	OverlapPenalty float64

	// Chains, HeatStep and SwapEvery configure the Tempered strategy's
	// (MC)³ ladder; zero values take mc3's defaults (4 chains, Δ = 0.3,
	// swap every 200 iterations).
	Chains    int
	HeatStep  float64
	SwapEvery int
}

func (o Options) withDefaults() Options {
	if o.Threshold == 0 {
		o.Threshold = 0.5
	}
	if o.Iterations == 0 {
		o.Iterations = 200000
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.LocalPhaseIters == 0 {
		o.LocalPhaseIters = 300
	}
	if o.PartitionGrid == 0 {
		o.PartitionGrid = 2
	}
	if o.SpecWidth == 0 {
		o.SpecWidth = 4
	}
	if o.GridSlack == 0 {
		o.GridSlack = 1.01
	}
	return o
}

// RegionInfo describes one partition of a partitioned (or convergent
// sequential) run, in parent-image pixel coordinates. Its fields mirror
// the rows of the paper's Table I.
type RegionInfo struct {
	X0, Y0, X1, Y1 float64
	Area           float64 // pixels²
	Lambda         float64 // eq. 5 object-count estimate for the region
	Circles        int     // artifacts detected inside the region
	Iters          int64   // iterations until convergence (or the cap)
	Converged      bool
	Seconds        float64 // wall-clock seconds of the region's chain
}

// TimePerIter returns the region's mean seconds per iteration.
func (r RegionInfo) TimePerIter() float64 {
	if r.Iters == 0 {
		return 0
	}
	return r.Seconds / float64(r.Iters)
}

// Contains reports whether (x, y) lies in [X0, X1) × [Y0, Y1).
func (r RegionInfo) Contains(x, y float64) bool {
	return x >= r.X0 && x < r.X1 && y >= r.Y0 && y < r.Y1
}

// Result is the outcome of a detection run.
type Result struct {
	Strategy   Strategy
	Circles    []Circle
	LogPost    float64 // relative log-posterior (whole-image strategies)
	Iterations int64   // total chain iterations across all partitions
	Elapsed    time.Duration
	// Partitions is the number of regions processed (1 for whole-image
	// strategies).
	Partitions int

	// Acceptance bookkeeping (whole-image strategies; the cold chain for
	// Tempered). GlobalRejectRate and LocalRejectRate are p_gr and p_lr
	// of eq. 4.
	AcceptRate       float64
	GlobalRejectRate float64
	LocalRejectRate  float64

	// Periodic-engine metadata: completed fork/join cycles, measured
	// wall-clock of the global and local phases, and — with
	// Options.SimulateParallel — the simulated Workers-way local-phase
	// makespan.
	Barriers        int64
	GlobalSeconds   float64
	LocalSeconds    float64
	SimLocalSeconds float64

	// Tempered metadata: fraction of chain-swap proposals accepted.
	SwapRate float64

	// Blind-merge metadata: cross-partition pairs averaged together and
	// overlap-area artifacts kept without a counterpart.
	Merged   int
	Disputed int

	// Regions carries per-partition convergence detail for Intelligent,
	// Blind and Converge-mode Sequential runs.
	Regions []RegionInfo
}

// Detect runs artifact detection over a grayscale pixel buffer with
// intensities in [0, 1], stored row-major with the given width and
// height.
func Detect(pix []float64, w, h int, opt Options) (*Result, error) {
	return DetectContext(context.Background(), pix, w, h, opt)
}

// ctxCheckIters is the approximate number of chain iterations between
// cancellation checks — a few milliseconds of work at typical per-
// iteration costs.
const ctxCheckIters = 5000

// DetectContext is Detect with cooperative cancellation: whole-image
// fixed-length strategies (Sequential, Periodic, Tempered) check ctx
// every few thousand iterations in phase-aligned chunks, so chain
// results are bit-identical to an uninterrupted run. Convergence-driven
// runs (Intelligent, Blind, and Sequential with Converge set) check ctx
// at entry and run their chains to convergence once started. On
// cancellation it returns ctx's error.
func DetectContext(ctx context.Context, pix []float64, w, h int, opt Options) (*Result, error) {
	if w <= 0 || h <= 0 || len(pix) != w*h {
		return nil, fmt.Errorf("parmcmc: bad image dimensions %dx%d for %d pixels", w, h, len(pix))
	}
	if opt.MeanRadius <= 0 {
		return nil, fmt.Errorf("parmcmc: MeanRadius is required")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	o := opt.withDefaults()
	im := &imaging.Image{W: w, H: h, Pix: append([]float64(nil), pix...)}
	im.Clamp()

	lambda := o.ExpectedCount
	if lambda <= 0 {
		lambda = math.Max(im.EstimateCount(o.Threshold, o.MeanRadius), 0.5)
	}
	params := model.DefaultParams(lambda, o.MeanRadius)
	if o.OverlapPenalty > 0 {
		params.OverlapPenalty = o.OverlapPenalty
	}
	weights := mcmc.DefaultWeights()
	steps := mcmc.DefaultStepSizes(o.MeanRadius)

	start := time.Now()
	res := &Result{Strategy: o.Strategy, Partitions: 1}
	switch o.Strategy {
	case Sequential:
		if o.Converge {
			out, err := partition.RunSequential(im, partitionConfig(o, params, weights, steps))
			if err != nil {
				return nil, err
			}
			fill(res, out.Circles, math.NaN(), out.Iters)
			res.Regions = []RegionInfo{regionInfo(out)}
			break
		}
		s, err := model.NewState(im, params)
		if err != nil {
			return nil, err
		}
		e, err := mcmc.New(s, rng.New(o.Seed), weights, steps)
		if err != nil {
			return nil, err
		}
		if err := runChunked(ctx, o.Iterations, ctxCheckIters, func(n int) { e.RunN(n) }); err != nil {
			return nil, err
		}
		fill(res, s.Cfg.Circles(), s.LogPost(), e.Iter)
		fillEngineStats(res, &e.Stats)

	case Periodic, PeriodicSpeculative:
		s, err := model.NewState(im, params)
		if err != nil {
			return nil, err
		}
		e, err := mcmc.New(s, rng.New(o.Seed), weights, steps)
		if err != nil {
			return nil, err
		}
		timer := trace.NewPhaseTimer()
		copt := core.Options{
			LocalPhaseIters:  o.LocalPhaseIters,
			GridXM:           float64(w) / float64(o.PartitionGrid) * o.GridSlack,
			GridYM:           float64(h) / float64(o.PartitionGrid) * o.GridSlack,
			Workers:          o.Workers,
			LocalSpecWidth:   o.LocalSpecWidth,
			Timer:            timer,
			SimulateParallel: o.SimulateParallel,
		}
		if o.Strategy == PeriodicSpeculative {
			copt.SpecWidth = o.SpecWidth
		}
		pe, err := core.NewEngine(e, copt)
		if err != nil {
			return nil, err
		}
		// Chunks that are whole multiples of the global+local cycle keep
		// the alternating schedule identical to a single Run call.
		chunk := o.Iterations
		if g := pe.GlobalPhaseIters(); g > 0 {
			cycle := g + o.LocalPhaseIters
			chunk = cycle * (1 + ctxCheckIters/cycle)
		}
		if err := runChunked(ctx, o.Iterations, chunk, pe.Run); err != nil {
			return nil, err
		}
		fill(res, s.Cfg.Circles(), s.LogPost(), e.Iter)
		fillEngineStats(res, &e.Stats)
		res.Partitions = o.PartitionGrid * o.PartitionGrid
		res.Barriers = pe.Barriers
		res.GlobalSeconds = timer.Total("global").Seconds()
		res.LocalSeconds = timer.Total("local").Seconds()
		res.SimLocalSeconds = pe.SimLocalSeconds

	case Intelligent:
		cfg := partitionConfig(o, params, weights, steps)
		out, err := partition.RunIntelligent(im, cfg, int(2.2*o.MeanRadius), o.Workers)
		if err != nil {
			return nil, err
		}
		var iters int64
		for _, r := range out.Regions {
			iters += r.Iters
			res.Regions = append(res.Regions, regionInfo(r))
		}
		fill(res, out.Circles, math.NaN(), iters)
		res.Partitions = len(out.Regions)

	case Blind:
		cfg := partitionConfig(o, params, weights, steps)
		out, err := partition.RunBlind(im, cfg, partition.BlindOptions{
			NX: o.PartitionGrid, NY: o.PartitionGrid,
			Margin:       1.1 * o.MeanRadius,
			MergeRadius:  5,
			KeepDisputed: true,
		}, o.Workers)
		if err != nil {
			return nil, err
		}
		var iters int64
		for _, r := range out.Regions {
			iters += r.Iters
			res.Regions = append(res.Regions, regionInfo(r))
		}
		fill(res, out.Circles, math.NaN(), iters)
		res.Partitions = len(out.Regions)
		res.Merged = out.Merged
		res.Disputed = out.Disputed

	case Tempered:
		mopt := mc3.DefaultOptions()
		mopt.Workers = o.Workers
		if o.Chains > 0 {
			mopt.Chains = o.Chains
		}
		if o.HeatStep > 0 {
			mopt.HeatStep = o.HeatStep
		}
		if o.SwapEvery > 0 {
			mopt.SwapEvery = o.SwapEvery
		}
		sampler, err := mc3.New(im, params, weights, steps, mopt, o.Seed)
		if err != nil {
			return nil, err
		}
		// Chunks that are whole multiples of SwapEvery keep the swap
		// cadence identical to a single Run call.
		chunk := mopt.SwapEvery * (1 + ctxCheckIters/mopt.SwapEvery)
		if err := runChunked(ctx, o.Iterations, chunk, sampler.Run); err != nil {
			return nil, err
		}
		cold := sampler.Cold()
		fill(res, cold.Cfg.Circles(), cold.LogPost(), int64(o.Iterations))
		fillEngineStats(res, &sampler.Engines[0].Stats)
		res.Partitions = mopt.Chains
		res.SwapRate = sampler.SwapRate()

	default:
		return nil, fmt.Errorf("parmcmc: unknown strategy %v", o.Strategy)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// runChunked advances a resumable sampler by total iterations in chunks,
// checking ctx between chunks.
func runChunked(ctx context.Context, total, chunk int, run func(n int)) error {
	if chunk < 1 {
		chunk = total
	}
	for remaining := total; remaining > 0; {
		if err := ctx.Err(); err != nil {
			return err
		}
		n := chunk
		if remaining < n {
			n = remaining
		}
		run(n)
		remaining -= n
	}
	return ctx.Err()
}

func fillEngineStats(res *Result, st *mcmc.Stats) {
	res.AcceptRate = 1 - st.RejectionRate()
	res.GlobalRejectRate, res.LocalRejectRate = st.GlobalLocalRates()
}

func regionInfo(r partition.RegionResult) RegionInfo {
	return RegionInfo{
		X0: r.Region.X0, Y0: r.Region.Y0, X1: r.Region.X1, Y1: r.Region.Y1,
		Area: r.Area, Lambda: r.Lambda, Circles: len(r.Circles),
		Iters: r.Iters, Converged: r.Converged, Seconds: r.Seconds,
	}
}

func partitionConfig(o Options, params model.Params, w mcmc.Weights, st mcmc.StepSizes) partition.Config {
	return partition.Config{
		Theta:      o.Threshold,
		BaseParams: params,
		Weights:    w,
		Steps:      st,
		MaxIters:   o.Iterations,
		Plateau:    mcmc.PlateauDetector{Window: 12, Tol: 0.5, MinIters: 1500},
		Seed:       o.Seed,
	}
}

func fill(res *Result, circles []geom.Circle, logPost float64, iters int64) {
	res.Circles = make([]Circle, len(circles))
	for i, c := range circles {
		res.Circles[i] = Circle{X: c.X, Y: c.Y, R: c.R}
	}
	res.LogPost = logPost
	res.Iterations = iters
}

// DetectImage converts any image.Image to grayscale and runs Detect.
func DetectImage(img image.Image, opt Options) (*Result, error) {
	b := img.Bounds()
	w, h := b.Dx(), b.Dy()
	pix := make([]float64, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r, g, bb, _ := img.At(b.Min.X+x, b.Min.Y+y).RGBA()
			// Rec. 601 luma from 16-bit channels.
			pix[y*w+x] = (0.299*float64(r) + 0.587*float64(g) + 0.114*float64(bb)) / 65535
		}
	}
	return Detect(pix, w, h, opt)
}

// SceneSpec configures a synthetic test scene.
type SceneSpec struct {
	W, H       int
	Count      int
	MeanRadius float64
	Noise      float64
	// Clusters > 0 clumps the artifacts (the bead layout); 0 spreads
	// them uniformly.
	Clusters int
	Seed     uint64
}

// GenerateScene renders a synthetic micrograph (bright discs on noisy
// background) and returns its pixels plus the ground-truth circles —
// convenient for demos, tests and benchmarking against a known answer.
func GenerateScene(spec SceneSpec) (pix []float64, truth []Circle) {
	scene := imaging.Synthesize(imaging.SceneSpec{
		W: spec.W, H: spec.H, Count: spec.Count,
		MeanRadius: spec.MeanRadius, RadiusStdDev: spec.MeanRadius * 0.1,
		Noise: spec.Noise, Clusters: spec.Clusters,
		MinSeparation: 1.05,
	}, rng.New(spec.Seed+1))
	truth = make([]Circle, len(scene.Truth))
	for i, c := range scene.Truth {
		truth[i] = Circle{X: c.X, Y: c.Y, R: c.R}
	}
	return scene.Image.Pix, truth
}

// MatchScore scores detections against ground truth and returns
// (precision, recall, F1) with matches allowed up to maxDist pixels.
func MatchScore(found, truth []Circle, maxDist float64) (precision, recall, f1 float64) {
	fs := make([]geom.Circle, len(found))
	for i, c := range found {
		fs[i] = geom.Circle{X: c.X, Y: c.Y, R: c.R}
	}
	ts := make([]geom.Circle, len(truth))
	for i, c := range truth {
		ts[i] = geom.Circle{X: c.X, Y: c.Y, R: c.R}
	}
	m := stats.MatchCircles(fs, ts, maxDist)
	return m.Precision(), m.Recall(), m.F1()
}
