// Package parmcmc is the public API of this repository: MCMC-based
// detection of artifacts (stained cell nuclei, latex beads — circular
// by default, elliptical via Options.Shape) in grayscale images, with
// the parallelisation strategies of Byrd, Jarvis & Bhalerao, "On the
// Parallelisation of MCMC-based Image Processing" (IEEE IPDPS
// workshops, 2010):
//
//   - Sequential: the plain reversible-jump sampler (baseline).
//   - Periodic: periodic partitioning (§V) — statistically exact
//     parallelism over a randomly offset grid.
//   - PeriodicSpeculative: Periodic plus speculative global moves
//     (eq. 3, from the authors' IPDPS'08 paper).
//   - Intelligent: pre-processor cuts along artifact-free bands, then
//     independent chains (§VIII; fast but not statistically exact).
//   - Blind: overlapping grid plus heuristic merge (§VIII).
//   - Tempered: Metropolis-coupled MCMC, the §IV related-work method.
//
// Every strategy is a plugin: a steppable sampler registered in a
// name→factory registry (one file per strategy), driven by one generic
// chunked loop that provides cooperative cancellation, streaming
// progress (Options.Observer) and checkpoint/resume
// (Options.OnCheckpoint, DetectResume) uniformly — see sampler.go.
//
// Shapes are a registry too (Discs, Ellipses; ParseShape/ShapeKinds):
// every strategy runs either family through the same generic loop, and
// results carry both the full shape parameters (Result.Ellipses) and an
// equal-area disc view (Result.Circles).
//
// The package deliberately exposes plain float64 pixel buffers and tiny
// Circle/Ellipse types; the heavy machinery lives in internal packages.
package parmcmc

import (
	"context"
	"image"
	"math"
	"runtime"
	"time"

	"repro/internal/geom"
	"repro/internal/imaging"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Circle is a detected (or ground-truth) disc artifact. For ellipse
// workloads it carries the equal-area radius; Result.Ellipses holds the
// full parameters.
type Circle struct {
	X, Y, R float64
}

// Ellipse is a detected (or ground-truth) artifact in generic form:
// centre, semi-axes and rotation (radians, [0, π)). A disc has
// Rx == Ry and Theta 0.
type Ellipse struct {
	X, Y, Rx, Ry, Theta float64
}

// EffR returns the equal-area radius √(Rx·Ry) (exactly Rx for a disc).
func (e Ellipse) EffR() float64 {
	if e.Rx == e.Ry {
		return e.Rx
	}
	return math.Sqrt(e.Rx * e.Ry)
}

// Strategy selects the parallelisation method.
type Strategy int

const (
	Sequential Strategy = iota
	Periodic
	PeriodicSpeculative
	Intelligent
	Blind
	Tempered
)

// Options configures a detection run. MeanRadius is required; everything
// else has sensible defaults.
type Options struct {
	Strategy Strategy

	// Shape selects the artifact family: Discs (default, the paper's
	// workload) or Ellipses (per-feature semi-axes and rotation; adds
	// axis-scale and rotate moves, drops the disc-only split/merge
	// pair). Every strategy supports both through the same generic
	// drive loop.
	Shape Shape

	// MeanRadius is the expected artifact radius in pixels (required).
	MeanRadius float64
	// ExpectedCount is the prior artifact count λ; 0 estimates it from
	// the image via eq. 5.
	ExpectedCount float64
	// Threshold is the intensity threshold of the eq. 5 estimator
	// (default 0.5).
	Threshold float64

	// Iterations is the chain length for Sequential / Periodic /
	// Tempered runs (default 200 000). Partitioned strategies run each
	// partition to convergence, capped at Iterations.
	Iterations int
	// Workers bounds goroutine parallelism (default GOMAXPROCS).
	Workers int
	// Seed fixes the run's randomness (default 1).
	Seed uint64

	// LocalPhaseIters sets the periodic engine's local phase length
	// (default 300); PartitionGrid the number of grid cells per axis for
	// Periodic and Blind (default 2).
	LocalPhaseIters int
	PartitionGrid   int
	// SpecWidth is the speculation width for PeriodicSpeculative. 0 (the
	// default) picks the width adaptively: a controller tracks the
	// windowed rejection rate of the global move-set and re-picks the
	// width maximizing expected committed iterations per second under
	// the paper's eq. 3 model, net of measured per-batch overhead. The
	// realized chain is identical for every width (and for the adaptive
	// schedule) — only throughput changes.
	SpecWidth int
	// LocalSpecWidth > 1 additionally runs speculative batches inside
	// each periodic partition worker (eq. 4's per-machine threads).
	LocalSpecWidth int
	// GridSlack scales the periodic grid spacing (default 1.01, i.e.
	// slightly wider than image/PartitionGrid). Set 1.0 for the exact
	// image/PartitionGrid spacing the paper's fig. 2 layout uses.
	GridSlack float64
	// SimulateParallel times periodic local-phase cells individually and
	// reports the makespan a Workers-way machine would achieve in
	// Result.SimLocalSeconds — the DESIGN.md §7 device for evaluating
	// parallel runtimes on hosts with fewer cores than the experiment
	// models. Chain results are unaffected.
	SimulateParallel bool

	// ScreenMinArea enables the coarse-to-fine likelihood screen: birth
	// and replace proposals whose shape covers at least this many pixels
	// (π·Rx·Ry) are priced against the 8×8 block pyramid first and
	// refined at full resolution only when the coarse upper bound
	// survives the rejection test. Results are bit-identical with the
	// screen on or off — only the work per proposal changes. 0 (the
	// default) disables screening; a typical setting is a few times the
	// mean artifact area, so only unusually large proposals pay for the
	// coarse pass. Applies to every strategy.
	ScreenMinArea float64

	// Converge makes a Sequential run terminate at plateau convergence
	// (capped at Iterations) and report per-region convergence metadata,
	// like the partitioned strategies do. Ignored by other strategies,
	// which already run each partition to convergence.
	Converge bool
	// OverlapPenalty overrides the prior's pairwise-overlap penalty γ
	// when positive (default: the model's standard value).
	OverlapPenalty float64

	// Chains, HeatStep and SwapEvery configure the Tempered strategy's
	// (MC)³ ladder; zero values take mc3's defaults (4 chains, Δ = 0.3,
	// swap every 200 iterations).
	Chains    int
	HeatStep  float64
	SwapEvery int

	// Observer, when non-nil, receives streaming Progress snapshots at
	// chunk boundaries (every few thousand iterations), on the goroutine
	// driving the run. Observing is read-only: results are bit-identical
	// with or without an observer attached. Not serialized into
	// checkpoints.
	Observer func(Progress)

	// OnCheckpoint, when non-nil, receives resumable Checkpoints at
	// chunk boundaries — every CheckpointEvery aggregate iterations, or
	// at every chunk when CheckpointEvery is 0. Capturing a checkpoint
	// is read-only; pass the blob to DetectResume to continue the run
	// bit-identically. Not serialized into checkpoints.
	OnCheckpoint func(*Checkpoint)
	// CheckpointEvery is the approximate number of aggregate iterations
	// between OnCheckpoint calls (0 = every chunk).
	CheckpointEvery int
}

func (o Options) withDefaults() Options {
	if o.Threshold == 0 {
		o.Threshold = 0.5
	}
	if o.Iterations == 0 {
		o.Iterations = 200000
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.LocalPhaseIters == 0 {
		o.LocalPhaseIters = 300
	}
	if o.PartitionGrid == 0 {
		o.PartitionGrid = 2
	}
	if o.GridSlack == 0 {
		o.GridSlack = 1.01
	}
	return o
}

// RegionInfo describes one partition of a partitioned (or convergent
// sequential) run, in parent-image pixel coordinates. Its fields mirror
// the rows of the paper's Table I.
type RegionInfo struct {
	X0, Y0, X1, Y1 float64
	Area           float64 // pixels²
	Lambda         float64 // eq. 5 object-count estimate for the region
	Circles        int     // artifacts detected inside the region
	Iters          int64   // iterations until convergence (or the cap)
	Converged      bool
	Seconds        float64 // wall-clock seconds of the region's chain
}

// TimePerIter returns the region's mean seconds per iteration.
func (r RegionInfo) TimePerIter() float64 {
	if r.Iters == 0 {
		return 0
	}
	return r.Seconds / float64(r.Iters)
}

// Contains reports whether (x, y) lies in [X0, X1) × [Y0, Y1).
func (r RegionInfo) Contains(x, y float64) bool {
	return x >= r.X0 && x < r.X1 && y >= r.Y0 && y < r.Y1
}

// Result is the outcome of a detection run.
type Result struct {
	Strategy Strategy
	// Shape is the artifact family the run detected (Result.Ellipses
	// carries genuine rotations/axis pairs only for Ellipses runs).
	Shape   Shape
	Circles []Circle
	// LogPost is the relative log-posterior of the final configuration
	// scored against the whole image, comparable across strategies
	// (partitioned strategies score their merged model).
	LogPost    float64
	Iterations int64 // total chain iterations across all partitions
	Elapsed    time.Duration
	// Partitions is the number of regions processed (1 for whole-image
	// strategies).
	Partitions int

	// Acceptance bookkeeping (aggregated across partitions for the
	// partitioned strategies; the cold chain for Tempered).
	// GlobalRejectRate and LocalRejectRate are p_gr and p_lr of eq. 4.
	AcceptRate       float64
	GlobalRejectRate float64
	LocalRejectRate  float64

	// Periodic-engine metadata: completed fork/join cycles, measured
	// wall-clock of the global and local phases, and — with
	// Options.SimulateParallel — the simulated Workers-way local-phase
	// makespan.
	Barriers        int64
	GlobalSeconds   float64
	LocalSeconds    float64
	SimLocalSeconds float64

	// Speculative-executor metadata for PeriodicSpeculative runs.
	// SpecBatches counts speculative rounds; SpecSpeedup is the measured
	// consumed-iterations-per-batch (the realized eq. 3 gain); SpecWidth
	// is the width the executor ended at (the fixed width, or the
	// adaptive controller's final pick — the latter is timing-driven and
	// so not deterministic, unlike the chain itself). With
	// Options.SimulateParallel, SimGlobalSeconds is the simulated
	// Workers-way global-phase wall-clock (per-batch LPT makespan plus
	// overhead) and SimGlobalSerialSeconds the serial-equivalent cost of
	// the same consumed iterations.
	SpecBatches            int64
	SpecSpeedup            float64
	SpecWidth              int
	SimGlobalSeconds       float64
	SimGlobalSerialSeconds float64

	// Ellipses carries the full shape parameters of every detection —
	// always populated, with Rx == Ry for disc runs; Circles mirrors it
	// with equal-area radii for disc-era callers.
	Ellipses []Ellipse

	// Tempered metadata: fraction of chain-swap proposals accepted.
	SwapRate float64

	// Blind-merge metadata: cross-partition pairs averaged together and
	// overlap-area artifacts kept without a counterpart.
	Merged   int
	Disputed int

	// Regions carries per-partition convergence detail for Intelligent,
	// Blind and Converge-mode Sequential runs.
	Regions []RegionInfo
}

// Detect runs artifact detection over a grayscale pixel buffer with
// intensities in [0, 1], stored row-major with the given width and
// height.
func Detect(pix []float64, w, h int, opt Options) (*Result, error) {
	return DetectContext(context.Background(), pix, w, h, opt)
}

// DetectContext is Detect with cooperative cancellation, streaming
// progress and checkpointing: it validates the inputs, builds the
// strategy's sampler through the registry, and drives it in chunks
// aligned to the strategy's natural cadence, checking ctx between
// chunks. Every strategy — including the convergence-driven partitioned
// ones — stops at its next chunk boundary on cancellation, returning
// ctx's error; chain results are bit-identical to an uninterrupted run
// regardless of when (or whether) cancellation, observation or
// checkpointing happen.
func DetectContext(ctx context.Context, pix []float64, w, h int, opt Options) (*Result, error) {
	env, err := newRunEnv(pix, w, h, opt)
	if err != nil {
		return nil, err
	}
	def, err := strategyFor(env.opt.Strategy)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	smp, err := def.factory(env)
	if err != nil {
		return nil, err
	}
	return drive(ctx, env, smp, 0)
}

// GrayPixels converts any image.Image to the grayscale pixel buffer
// Detect consumes (row-major, intensities in [0, 1], Rec. 601 luma).
// Callers that need the buffer beyond a single Detect call — e.g. to
// resume a checkpointed run over the same image — use this instead of
// DetectImage.
func GrayPixels(img image.Image) (pix []float64, w, h int) {
	b := img.Bounds()
	w, h = b.Dx(), b.Dy()
	pix = make([]float64, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r, g, bb, _ := img.At(b.Min.X+x, b.Min.Y+y).RGBA()
			// Rec. 601 luma from 16-bit channels.
			pix[y*w+x] = (0.299*float64(r) + 0.587*float64(g) + 0.114*float64(bb)) / 65535
		}
	}
	return pix, w, h
}

// DetectImage converts any image.Image to grayscale and runs Detect.
func DetectImage(img image.Image, opt Options) (*Result, error) {
	pix, w, h := GrayPixels(img)
	return Detect(pix, w, h, opt)
}

// SceneSpec configures a synthetic test scene.
type SceneSpec struct {
	W, H       int
	Count      int
	MeanRadius float64
	Noise      float64
	// Clusters > 0 clumps the artifacts (the bead layout); 0 spreads
	// them uniformly.
	Clusters int
	Seed     uint64
	// Shape selects the artifact family (Discs by default). Ellipse
	// scenes draw the major semi-axis from the radius distribution, the
	// minor axis as AxisRatio (default 0.7, jittered) times the major,
	// and a uniform rotation.
	Shape     Shape
	AxisRatio float64
}

// GenerateScene renders a synthetic micrograph (bright artifacts on
// noisy background) and returns its pixels plus the ground truth as
// equal-area circles — convenient for demos, tests and benchmarking
// against a known answer. GenerateSceneShapes returns the full shape
// parameters instead.
func GenerateScene(spec SceneSpec) (pix []float64, truth []Circle) {
	pix, shapes := GenerateSceneShapes(spec)
	truth = make([]Circle, len(shapes))
	for i, e := range shapes {
		truth[i] = Circle{X: e.X, Y: e.Y, R: e.EffR()}
	}
	return pix, truth
}

// GenerateSceneShapes is GenerateScene with full ground-truth shape
// parameters (semi-axes and rotation).
func GenerateSceneShapes(spec SceneSpec) (pix []float64, truth []Ellipse) {
	scene := imaging.Synthesize(imaging.SceneSpec{
		W: spec.W, H: spec.H, Count: spec.Count,
		Shape:      spec.Shape.kind(),
		AxisRatio:  spec.AxisRatio,
		MeanRadius: spec.MeanRadius, RadiusStdDev: spec.MeanRadius * 0.1,
		Noise: spec.Noise, Clusters: spec.Clusters,
		MinSeparation: 1.05,
	}, rng.New(spec.Seed+1))
	truth = make([]Ellipse, len(scene.Truth))
	for i, c := range scene.Truth {
		truth[i] = Ellipse{X: c.X, Y: c.Y, Rx: c.Rx, Ry: c.Ry, Theta: c.Theta}
	}
	return scene.Image.Pix, truth
}

// MatchScore scores detections against ground truth and returns
// (precision, recall, F1) with matches allowed up to maxDist pixels.
func MatchScore(found, truth []Circle, maxDist float64) (precision, recall, f1 float64) {
	fs := make([]geom.Ellipse, len(found))
	for i, c := range found {
		fs[i] = geom.Disc(c.X, c.Y, c.R)
	}
	ts := make([]geom.Ellipse, len(truth))
	for i, c := range truth {
		ts[i] = geom.Disc(c.X, c.Y, c.R)
	}
	m := stats.MatchCircles(fs, ts, maxDist)
	return m.Precision(), m.Recall(), m.F1()
}

// MatchScoreShapes is MatchScore over full shape parameters: matching
// is by centre distance, size error by equal-area radius.
func MatchScoreShapes(found, truth []Ellipse, maxDist float64) (precision, recall, f1 float64) {
	fs := make([]geom.Ellipse, len(found))
	for i, e := range found {
		fs[i] = geom.Ellipse{X: e.X, Y: e.Y, Rx: e.Rx, Ry: e.Ry, Theta: e.Theta}
	}
	ts := make([]geom.Ellipse, len(truth))
	for i, e := range truth {
		ts[i] = geom.Ellipse{X: e.X, Y: e.Y, Rx: e.Rx, Ry: e.Ry, Theta: e.Theta}
	}
	m := stats.MatchCircles(fs, ts, maxDist)
	return m.Precision(), m.Recall(), m.F1()
}
