package parmcmc

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/geom"
	"repro/internal/imaging"
	"repro/internal/mcmc"
	"repro/internal/model"
	"repro/internal/partition"
)

// sampler is the strategy plugin contract: a steppable, observable,
// checkpointable detection run. DetectContext builds one through the
// registry and drives it with the single generic loop below — no
// strategy-specific control flow lives outside the sampler files.
//
// The contract that makes cancellation, observation and checkpointing
// free of result drift: Step(ctx, n) advances the run by up to n
// iterations of real work and must leave the sampler at a state
// indistinguishable from an uninterrupted run reaching the same
// iteration count; Snapshot and Checkpoint are read-only; AlignChunk
// rounds the driver's preferred chunk to the strategy's natural cadence
// (fork/join cycle, swap interval, convergence-check stride) so
// chunked execution replays the exact schedule of a monolithic one.
type sampler interface {
	// AlignChunk rounds the driver's preferred per-step chunk size to
	// the strategy's cadence. The result must be >= 1.
	AlignChunk(n int) int
	// Step advances the run by up to n iterations and reports whether
	// the run is complete. Long steps should honour ctx at internal
	// barriers where doing so cannot perturb results.
	Step(ctx context.Context, n int) (done bool, err error)
	// Snapshot reports current progress without mutating anything.
	Snapshot() Progress
	// Finish scores the final state into res (circles, log-posterior,
	// iteration counts, strategy metadata).
	Finish(res *Result) error
	// Checkpoint serializes the sampler's resumable state; Resume
	// restores it into a freshly built sampler for the same image and
	// options. A resumed run is bit-identical to an uninterrupted one.
	Checkpoint() ([]byte, error)
	Resume(data []byte) error
}

// ctxCheckIters is the approximate number of chain iterations between
// cancellation checks, progress snapshots and checkpoint opportunities —
// a few milliseconds of work at typical per-iteration costs.
const ctxCheckIters = 5000

// runEnv is the validated, defaulted environment a sampler runs in.
type runEnv struct {
	opt     Options
	im      *imaging.Image
	params  model.Params
	weights mcmc.Weights
	steps   mcmc.StepSizes

	pixHash       uint64
	pixHashCached bool
}

// hash returns the image fingerprint, computed on first use — only
// checkpoint emission and resume validation need it, so plain Detect
// runs never pay the per-pixel pass. The driver goroutine is the only
// caller; no locking needed.
func (env *runEnv) hash() uint64 {
	if !env.pixHashCached {
		env.pixHash = hashImage(env.im)
		env.pixHashCached = true
	}
	return env.pixHash
}

// newRunEnv validates the inputs, copies and clamps the image, and
// derives the model parameters shared by every strategy.
func newRunEnv(pix []float64, w, h int, opt Options) (*runEnv, error) {
	if w <= 0 || h <= 0 || len(pix) != w*h {
		return nil, fmt.Errorf("parmcmc: bad image dimensions %dx%d for %d pixels", w, h, len(pix))
	}
	if opt.MeanRadius <= 0 {
		return nil, fmt.Errorf("parmcmc: MeanRadius is required")
	}
	o := opt.withDefaults()
	im := &imaging.Image{W: w, H: h, Pix: append([]float64(nil), pix...)}
	im.Clamp()

	sdef, err := shapeFor(o.Shape)
	if err != nil {
		return nil, err
	}
	lambda := o.ExpectedCount
	if lambda <= 0 {
		lambda = math.Max(im.EstimateCount(o.Threshold, o.MeanRadius), 0.5)
	}
	params := model.DefaultParams(lambda, o.MeanRadius)
	params.Shape = sdef.kind
	if o.OverlapPenalty > 0 {
		params.OverlapPenalty = o.OverlapPenalty
	}
	return &runEnv{
		opt:     o,
		im:      im,
		params:  params,
		weights: mcmc.DefaultWeightsFor(sdef.kind),
		steps:   mcmc.DefaultStepSizes(o.MeanRadius).WithEllipseDefaults(),
	}, nil
}

// drive is the generic run loop shared by every strategy: advance the
// sampler in aligned chunks, checking cancellation, streaming progress
// and emitting checkpoints between chunks, then let the sampler score
// its final state. prior carries wall-clock accumulated by earlier
// segments of a resumed run.
func drive(ctx context.Context, env *runEnv, smp sampler, prior time.Duration) (*Result, error) {
	// Samplers backed by persistent worker goroutines (the periodic
	// engine's gang, the speculative executor's eval lanes) release them
	// here, on every exit path.
	if c, ok := smp.(interface{ Close() }); ok {
		defer c.Close()
	}
	o := env.opt
	start := time.Now()
	chunk := smp.AlignChunk(ctxCheckIters)
	if chunk < 1 {
		chunk = 1
	}
	nextCheckpoint := int64(0)
	if o.OnCheckpoint != nil && o.CheckpointEvery > 0 {
		nextCheckpoint = smp.Snapshot().Iter + int64(o.CheckpointEvery)
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		done, err := smp.Step(ctx, chunk)
		if err != nil {
			return nil, err
		}
		if o.Observer != nil || (o.OnCheckpoint != nil && !done) {
			snap := smp.Snapshot()
			if o.Observer != nil {
				o.Observer(snap)
			}
			if o.OnCheckpoint != nil && !done &&
				(o.CheckpointEvery <= 0 || snap.Iter >= nextCheckpoint) {
				cp, err := buildCheckpoint(env, smp, prior+time.Since(start))
				if err != nil {
					return nil, err
				}
				o.OnCheckpoint(cp)
				if o.CheckpointEvery > 0 {
					nextCheckpoint = snap.Iter + int64(o.CheckpointEvery)
				}
			}
		}
		if done {
			break
		}
	}
	res := &Result{Strategy: o.Strategy, Shape: o.Shape, Partitions: 1}
	if err := smp.Finish(res); err != nil {
		return nil, err
	}
	res.Elapsed = prior + time.Since(start)
	return res, nil
}

// partitionConfig derives the per-region chain configuration shared by
// the partitioned strategies and Converge-mode Sequential runs.
func (env *runEnv) partitionConfig() partition.Config {
	o := env.opt
	return partition.Config{
		Theta:         o.Threshold,
		BaseParams:    env.params,
		Weights:       env.weights,
		Steps:         env.steps,
		MaxIters:      o.Iterations,
		Plateau:       mcmc.PlateauDetector{Window: 12, Tol: 0.5, MinIters: 1500},
		Seed:          o.Seed,
		ScreenMinArea: o.ScreenMinArea,
	}
}

// scoreCircles evaluates a final merged configuration against the whole
// image under the run's parameters, giving partitioned strategies a
// log-posterior comparable with the whole-image strategies'.
func (env *runEnv) scoreCircles(circles []geom.Ellipse) float64 {
	s, err := model.NewState(env.im, env.params)
	if err != nil {
		return math.NaN()
	}
	for _, c := range circles {
		dLik, dPrior := s.EvalAdd(c)
		if math.IsInf(dPrior, -1) {
			// A merged circle outside the prior's support (should not
			// happen); report the truthful degenerate score.
			return math.Inf(-1)
		}
		s.ApplyAdd(c, dLik, dPrior)
	}
	return s.LogPost()
}

func fillEngineStats(res *Result, st *mcmc.Stats) {
	res.AcceptRate = 1 - st.RejectionRate()
	res.GlobalRejectRate, res.LocalRejectRate = st.GlobalLocalRates()
}

func regionInfo(r partition.RegionResult) RegionInfo {
	return RegionInfo{
		X0: r.Region.X0, Y0: r.Region.Y0, X1: r.Region.X1, Y1: r.Region.Y1,
		Area: r.Area, Lambda: r.Lambda, Circles: len(r.Circles),
		Iters: r.Iters, Converged: r.Converged, Seconds: r.Seconds,
	}
}

func fill(res *Result, shapes []geom.Ellipse, logPost float64, iters int64) {
	res.Circles = make([]Circle, len(shapes))
	res.Ellipses = make([]Ellipse, len(shapes))
	for i, c := range shapes {
		res.Circles[i] = Circle{X: c.X, Y: c.Y, R: c.EffR()}
		res.Ellipses[i] = Ellipse{X: c.X, Y: c.Y, Rx: c.Rx, Ry: c.Ry, Theta: c.Theta}
	}
	res.LogPost = logPost
	res.Iterations = iters
}
