package parmcmc

import (
	"context"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/mcmc"
	"repro/internal/partition"
	"repro/internal/sched"
)

// regionRunner is the shared machinery of the partitioned strategies
// (Intelligent, Blind): a set of independent region chains advanced in
// lockstep chunks on a bounded worker pool. Each Step is one parallel
// round over the not-yet-converged chains, so cancellation is honoured
// between rounds — chunk-aligned, like the whole-image strategies —
// and every round boundary is a valid checkpoint.
type regionRunner struct {
	env    *runEnv
	cfg    partition.Config
	chains []*partition.Chain
}

func newRegionRunner(env *runEnv, regions []geom.Rect) (regionRunner, error) {
	cfg := env.partitionConfig()
	chains, err := partition.NewChains(env.im, regions, cfg)
	if err != nil {
		return regionRunner{}, err
	}
	return regionRunner{env: env, cfg: cfg, chains: chains}, nil
}

func (rr *regionRunner) AlignChunk(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// step advances every unfinished chain by up to n iterations, in
// parallel, and reports whether all chains are done. Chains own
// disjoint state and deterministic RNG streams, so results do not
// depend on the worker count or on which rounds ran before a
// cancellation.
func (rr *regionRunner) step(_ context.Context, n int) (bool, error) {
	active := make([]*partition.Chain, 0, len(rr.chains))
	for _, c := range rr.chains {
		if !c.Done() {
			active = append(active, c)
		}
	}
	if len(active) == 0 {
		return true, nil
	}
	sched.ForEach(len(active), rr.env.opt.Workers, func(i int) { active[i].Advance(n) })
	for _, c := range active {
		if !c.Done() {
			return false, nil
		}
	}
	return true, nil
}

// progress aggregates chain state into a Progress snapshot.
func (rr *regionRunner) progress() Progress {
	p := Progress{
		Strategy:   rr.env.opt.Strategy,
		Partitions: len(rr.chains),
		LogPost:    math.NaN(),
	}
	var stats mcmc.Stats
	logPost, haveLogPost := 0.0, false
	for _, c := range rr.chains {
		if c.Done() {
			p.PartitionsDone++
		}
		p.Iter += c.Iters()
		if e := c.Eng; e != nil {
			logPost += e.S.LogPost()
			haveLogPost = true
			p.NumCircles += e.S.Cfg.Len()
			stats.Add(e.Stats)
		}
	}
	if haveLogPost {
		p.LogPost = logPost
	}
	p.AcceptRate = 1 - stats.RejectionRate()
	p.Phase = fmt.Sprintf("regions %d/%d", p.PartitionsDone, p.Partitions)
	return p
}

// results returns per-chain RegionResults in region order.
func (rr *regionRunner) results() []partition.RegionResult {
	out := make([]partition.RegionResult, len(rr.chains))
	for i, c := range rr.chains {
		out[i] = c.Result()
	}
	return out
}

// finishRegions fills the bookkeeping every partitioned strategy
// shares: per-region metadata, summed iterations, aggregate acceptance
// statistics and the partition count.
func (rr *regionRunner) finishRegions(res *Result, results []partition.RegionResult) {
	var iters int64
	var stats mcmc.Stats
	for i, r := range results {
		iters += r.Iters
		res.Regions = append(res.Regions, regionInfo(r))
		stats.Add(rr.chains[i].Stats())
	}
	res.Iterations = iters
	res.Partitions = len(results)
	fillEngineStats(res, &stats)
}

// regionsDump is the partitioned strategies' checkpoint payload.
type regionsDump struct {
	Chains []partition.ChainDump
}

func (rr *regionRunner) checkpoint() ([]byte, error) {
	d := regionsDump{Chains: make([]partition.ChainDump, len(rr.chains))}
	for i, c := range rr.chains {
		d.Chains[i] = c.Dump()
	}
	return encodePayload(d)
}

func (rr *regionRunner) resume(data []byte) error {
	var d regionsDump
	if err := decodePayload(data, &d); err != nil {
		return err
	}
	if len(d.Chains) != len(rr.chains) {
		return fmt.Errorf("parmcmc: checkpoint has %d regions, this image yields %d",
			len(d.Chains), len(rr.chains))
	}
	for i, cd := range d.Chains {
		if cd.Region != rr.chains[i].Region {
			return fmt.Errorf("parmcmc: checkpoint region %d is %+v, this image yields %+v",
				i, cd.Region, rr.chains[i].Region)
		}
		chain, err := partition.RestoreChain(rr.env.im, rr.cfg, cd)
		if err != nil {
			return err
		}
		rr.chains[i] = chain
	}
	return nil
}
