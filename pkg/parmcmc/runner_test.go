package parmcmc

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"
)

// runnerJobs builds a small heterogeneous batch over the shared test
// scene: several strategies, fixed seeds, single inner worker so the
// comparison across runner concurrency levels is exact.
func runnerJobs(t *testing.T) []Job {
	t.Helper()
	pix, _, w, h := testScene(t)
	var jobs []Job
	for i, s := range []Strategy{Sequential, Periodic, Tempered, Sequential, Blind} {
		jobs = append(jobs, Job{
			Name: fmt.Sprintf("job%d/%s", i, s),
			Pix:  pix, W: w, H: h,
			Opt: Options{
				Strategy: s, MeanRadius: 8, Iterations: 5000,
				Seed: uint64(i + 1), Workers: 1,
			},
		})
	}
	return jobs
}

func resultsEqual(t *testing.T, a, b []JobResult) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("result counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		ra, rb := a[i], b[i]
		if ra.Index != i || rb.Index != i {
			t.Fatalf("results not in job order at %d: %d/%d", i, ra.Index, rb.Index)
		}
		if ra.Name != rb.Name || ra.Seed != rb.Seed {
			t.Fatalf("metadata differs at %d: %+v vs %+v", i, ra, rb)
		}
		if (ra.Err == nil) != (rb.Err == nil) {
			t.Fatalf("error mismatch at %d: %v vs %v", i, ra.Err, rb.Err)
		}
		x, y := ra.Result, rb.Result
		if len(x.Circles) != len(y.Circles) {
			t.Fatalf("%s: circle counts differ: %d vs %d", ra.Name, len(x.Circles), len(y.Circles))
		}
		for j := range x.Circles {
			if x.Circles[j] != y.Circles[j] {
				t.Fatalf("%s: circle %d differs: %+v vs %+v", ra.Name, j, x.Circles[j], y.Circles[j])
			}
		}
		if x.Iterations != y.Iterations {
			t.Fatalf("%s: iterations differ: %d vs %d", ra.Name, x.Iterations, y.Iterations)
		}
		if !math.IsNaN(x.LogPost) && x.LogPost != y.LogPost {
			t.Fatalf("%s: logpost differs: %v vs %v", ra.Name, x.LogPost, y.LogPost)
		}
	}
}

// Results must be bit-identical for fixed seeds no matter how many jobs
// run concurrently.
func TestRunnerDeterministicAcrossConcurrency(t *testing.T) {
	jobs := runnerJobs(t)
	base, err := NewRunner(1).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, conc := range []int{2, 4} {
		got, err := NewRunner(conc).Run(context.Background(), jobs)
		if err != nil {
			t.Fatal(err)
		}
		resultsEqual(t, base, got)
	}
}

func TestRunnerStreamDeliversAll(t *testing.T) {
	jobs := runnerJobs(t)
	seen := make(map[int]bool)
	for jr := range NewRunner(2).Stream(context.Background(), jobs) {
		if jr.Err != nil {
			t.Fatalf("%s: %v", jr.Name, jr.Err)
		}
		if seen[jr.Index] {
			t.Fatalf("job %d delivered twice", jr.Index)
		}
		seen[jr.Index] = true
	}
	if len(seen) != len(jobs) {
		t.Fatalf("delivered %d of %d jobs", len(seen), len(jobs))
	}
}

// Cancelling mid-batch must stop undispatched jobs with ctx's error and
// interrupt long-running chains at their next checkpoint, while jobs
// that finished keep their results.
func TestRunnerCancellationMidBatch(t *testing.T) {
	pix, _, w, h := testScene(t)
	jobs := make([]Job, 6)
	for i := range jobs {
		jobs[i] = Job{
			Name: fmt.Sprintf("long%d", i),
			Pix:  pix, W: w, H: h,
			Opt: Options{
				Strategy: Sequential, MeanRadius: 8,
				Iterations: 50_000_000, // hours if not cancelled
				Seed:       uint64(i + 1), Workers: 1,
			},
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	start := time.Now()
	stream := NewRunner(2).Stream(ctx, jobs)
	cancel()
	var results []JobResult
	for jr := range stream {
		results = append(results, jr)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if len(results) != len(jobs) {
		t.Fatalf("accounted for %d of %d jobs", len(results), len(jobs))
	}
	cancelled := 0
	for _, jr := range results {
		if jr.Err != nil {
			if !errors.Is(jr.Err, context.Canceled) {
				t.Fatalf("%s: unexpected error %v", jr.Name, jr.Err)
			}
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Fatal("no job observed the cancellation")
	}
}

func TestDetectContextCancelled(t *testing.T) {
	pix, _, w, h := testScene(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := DetectContext(ctx, pix, w, h, Options{MeanRadius: 8, Iterations: 1000})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

// Jobs that leave Seed zero get deterministic, distinct, per-index seeds.
func TestRunnerSeedDerivation(t *testing.T) {
	pix, _, w, h := testScene(t)
	jobs := make([]Job, 3)
	for i := range jobs {
		jobs[i] = Job{
			Name: fmt.Sprintf("auto%d", i),
			Pix:  pix, W: w, H: h,
			Opt: Options{Strategy: Sequential, MeanRadius: 8, Iterations: 500, Workers: 1},
		}
	}
	r := NewRunner(1)
	a, err := r.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRunner(3).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	seeds := map[uint64]bool{}
	for i := range a {
		if a[i].Seed == 0 {
			t.Fatalf("job %d ran with zero seed", i)
		}
		if a[i].Seed != b[i].Seed {
			t.Fatalf("seed derivation unstable at %d: %d vs %d", i, a[i].Seed, b[i].Seed)
		}
		seeds[a[i].Seed] = true
	}
	if len(seeds) != len(jobs) {
		t.Fatalf("derived seeds collide: %v", seeds)
	}
	resultsEqual(t, a, b)
}

func TestRunnerFuncJobs(t *testing.T) {
	boom := errors.New("boom")
	jobs := []Job{
		{Name: "ok", Func: func(context.Context) (any, error) { return 42, nil }},
		{Name: "fail", Func: func(context.Context) (any, error) { return nil, boom }},
	}
	out, err := NewRunner(2).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := out[0].Value.(int); !ok || v != 42 {
		t.Fatalf("value = %v", out[0].Value)
	}
	if !errors.Is(out[1].Err, boom) {
		t.Fatalf("err = %v", out[1].Err)
	}
}

// Sweep enumeration must be deterministic with axes nesting in field
// order (Strategies outermost, Seeds innermost) and axis values named
// in the job labels.
func TestSweepEnumerationOrder(t *testing.T) {
	s := Sweep{
		Name:       "t",
		Base:       Options{MeanRadius: 8, Iterations: 100},
		Strategies: []Strategy{Sequential, Periodic},
		Workers:    []int{1, 2},
		Seeds:      []uint64{7, 9},
	}
	jobs := s.Jobs()
	want := []string{
		"t/sequential/workers=1/seed=7",
		"t/sequential/workers=1/seed=9",
		"t/sequential/workers=2/seed=7",
		"t/sequential/workers=2/seed=9",
		"t/periodic/workers=1/seed=7",
		"t/periodic/workers=1/seed=9",
		"t/periodic/workers=2/seed=7",
		"t/periodic/workers=2/seed=9",
	}
	if len(jobs) != len(want) {
		t.Fatalf("enumerated %d jobs, want %d", len(jobs), len(want))
	}
	for i, j := range jobs {
		if j.Name != want[i] {
			t.Fatalf("job %d = %q, want %q", i, j.Name, want[i])
		}
	}
	if jobs[3].Opt.Strategy != Sequential || jobs[3].Opt.Workers != 2 || jobs[3].Opt.Seed != 9 {
		t.Fatalf("job 3 options wrong: %+v", jobs[3].Opt)
	}
	if jobs[4].Opt.Strategy != Periodic {
		t.Fatalf("job 4 options wrong: %+v", jobs[4].Opt)
	}
	// Unswept axes keep Base values and stay out of the names.
	if jobs[0].Opt.Iterations != 100 || jobs[0].Opt.MeanRadius != 8 {
		t.Fatalf("base options not carried: %+v", jobs[0].Opt)
	}
}

// A sweep run through the Runner is itself deterministic.
func TestSweepThroughRunner(t *testing.T) {
	pix, _, w, h := testScene(t)
	sweep := Sweep{
		Name: "scene",
		Pix:  pix, W: w, H: h,
		Base:       Options{MeanRadius: 8, Iterations: 2000, Workers: 1},
		Strategies: []Strategy{Sequential, Periodic},
		Seeds:      []uint64{3, 5},
	}
	a, err := NewRunner(1).Run(context.Background(), sweep.Jobs())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRunner(4).Run(context.Background(), sweep.Jobs())
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, a, b)
}

// Converge-mode sequential runs report per-region convergence metadata.
func TestDetectConvergeRegions(t *testing.T) {
	pix, _, w, h := testScene(t)
	res, err := Detect(pix, w, h, Options{
		Strategy: Sequential, Converge: true, MeanRadius: 8,
		Iterations: 20000, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regions) != 1 {
		t.Fatalf("regions = %d", len(res.Regions))
	}
	r := res.Regions[0]
	if r.X1 != float64(w) || r.Y1 != float64(h) || r.Iters == 0 || r.Seconds <= 0 {
		t.Fatalf("region metadata wrong: %+v", r)
	}
	if r.TimePerIter() <= 0 {
		t.Fatal("TimePerIter not positive")
	}
}
