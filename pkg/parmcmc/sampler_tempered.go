package parmcmc

import (
	"context"
	"fmt"

	"repro/internal/mc3"
)

func init() {
	registerStrategy(Tempered, "mc3", newTemperedSampler)
}

// newTemperedSampler builds the §IV Metropolis-coupled (MC)³ sampler.
func newTemperedSampler(env *runEnv) (sampler, error) {
	o := env.opt
	mopt := mc3.DefaultOptions()
	mopt.Workers = o.Workers
	if o.Chains > 0 {
		mopt.Chains = o.Chains
	}
	if o.HeatStep > 0 {
		mopt.HeatStep = o.HeatStep
	}
	if o.SwapEvery > 0 {
		mopt.SwapEvery = o.SwapEvery
	}
	mopt.ScreenMinArea = o.ScreenMinArea
	s, err := mc3.New(env.im, env.params, env.weights, env.steps, mopt, o.Seed)
	if err != nil {
		return nil, err
	}
	sp := &temperedSampler{env: env, s: s, mopt: mopt}
	s.OnSwap = func(info mc3.SwapInfo) { sp.lastSwap = info }
	return sp, nil
}

type temperedSampler struct {
	env  *runEnv
	s    *mc3.Sampler
	mopt mc3.Options

	// lastSwap is the most recent swap-attempt snapshot, delivered
	// through Sampler.OnSwap.
	lastSwap mc3.SwapInfo
}

// done returns the per-chain iterations completed so far (every chain
// advances in lockstep; the cold chain's counter is the run's clock).
func (sp *temperedSampler) done() int64 { return sp.s.Engines[0].Iter }

// AlignChunk rounds the chunk to whole multiples of SwapEvery, keeping
// the swap cadence identical to a single Run call.
func (sp *temperedSampler) AlignChunk(n int) int {
	return sp.mopt.SwapEvery * (1 + n/sp.mopt.SwapEvery)
}

func (sp *temperedSampler) Step(_ context.Context, n int) (bool, error) {
	total := int64(sp.env.opt.Iterations)
	if rem := total - sp.done(); int64(n) > rem {
		n = int(rem)
	}
	if n > 0 {
		sp.s.Run(n)
	}
	return sp.done() >= total, nil
}

func (sp *temperedSampler) Snapshot() Progress {
	cold := sp.s.Cold()
	doneFlag := 0
	if sp.done() >= int64(sp.env.opt.Iterations) {
		doneFlag = 1
	}
	return Progress{
		Strategy: sp.env.opt.Strategy,
		Phase: fmt.Sprintf("swaps %d (%.0f%% accepted)",
			sp.lastSwap.Proposed, 100*sp.s.SwapRate()),
		Iter: sp.done(), Total: int64(sp.env.opt.Iterations),
		LogPost: cold.LogPost(), NumCircles: cold.Cfg.Len(),
		AcceptRate: 1 - sp.s.Engines[0].Stats.RejectionRate(),
		Partitions: sp.mopt.Chains, PartitionsDone: doneFlag * sp.mopt.Chains,
	}
}

func (sp *temperedSampler) Finish(res *Result) error {
	cold := sp.s.Cold()
	fill(res, cold.Cfg.Circles(), cold.LogPost(), int64(sp.env.opt.Iterations))
	fillEngineStats(res, &sp.s.Engines[0].Stats)
	res.Partitions = sp.mopt.Chains
	res.SwapRate = sp.s.SwapRate()
	return nil
}

// temperedDump is the (MC)³ checkpoint payload.
type temperedDump struct {
	Sampler mc3.SamplerDump
}

func (sp *temperedSampler) Checkpoint() ([]byte, error) {
	return encodePayload(temperedDump{Sampler: sp.s.Dump()})
}

func (sp *temperedSampler) Resume(data []byte) error {
	var d temperedDump
	if err := decodePayload(data, &d); err != nil {
		return err
	}
	return sp.s.Restore(d.Sampler)
}
