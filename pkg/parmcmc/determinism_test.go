package parmcmc

import (
	"context"
	"math"
	"testing"
)

// The determinism suite pins the two cross-cutting guarantees of the
// sampler layer: attaching an observer never changes results, and a
// checkpoint→resume continuation is bit-identical to an uninterrupted
// run — for every registered strategy, including Converge-mode
// Sequential. CI runs this under -race, which also exercises the
// parallel region rounds and periodic local phases.

// detCase is one strategy configuration under test.
type detCase struct {
	name string
	pix  []float64 // the case's scene (shape families differ)
	opt  Options
}

func determinismCases(t *testing.T) ([]float64, int, int, []detCase) {
	t.Helper()
	pix, w, h, cases := determinismCasesShaped(t, Discs)
	epix, _, _, ecases := determinismCasesShaped(t, Ellipses)
	_ = epix
	cases = append(cases, ecases...)
	return pix, w, h, cases
}

// determinismCasesShaped builds the per-strategy cases for one shape
// family. The returned pix is the family's scene; ellipse cases carry
// their own pixels (detCase.pix) so both families can share one list.
func determinismCasesShaped(t *testing.T, shape Shape) ([]float64, int, int, []detCase) {
	t.Helper()
	// Dense enough that every strategy — including each blind quadrant —
	// needs more than one 5000-iteration chunk to converge, so every
	// case emits at least one mid-run checkpoint.
	const w, h = 160, 160
	pix, _ := GenerateScene(SceneSpec{
		W: w, H: h, Count: 18, MeanRadius: 7, Noise: 0.08, Seed: 21,
		Shape: shape,
	})
	prefix := ""
	if shape != Discs {
		prefix = shape.String() + "/"
	}
	var cases []detCase
	for _, s := range Strategies() {
		cases = append(cases, detCase{
			name: prefix + s.String(),
			pix:  pix,
			opt: Options{
				Strategy: s, Shape: shape, MeanRadius: 7, Iterations: 16000, Seed: 11, Workers: 2,
			},
		})
	}
	cases = append(cases, detCase{
		name: prefix + "sequential+converge",
		pix:  pix,
		opt: Options{
			Strategy: Sequential, Shape: shape, Converge: true,
			MeanRadius: 7, Iterations: 16000, Seed: 11, Workers: 2,
		},
	})
	// The Strategies() loop above covers the adaptive executor
	// (SpecWidth 0); this case pins the fixed-width path too.
	cases = append(cases, detCase{
		name: prefix + "periodic+spec/width-3",
		pix:  pix,
		opt: Options{
			Strategy: PeriodicSpeculative, Shape: shape, SpecWidth: 3,
			MeanRadius: 7, Iterations: 16000, Seed: 11, Workers: 2,
		},
	})
	return pix, w, h, cases
}

// mustEqualResults compares every deterministic field of two results;
// wall-clock fields are excluded.
func mustEqualResults(t *testing.T, label string, a, b *Result) {
	t.Helper()
	feq := func(field string, x, y float64) {
		if math.Float64bits(x) != math.Float64bits(y) {
			t.Fatalf("%s: %s differs: %v vs %v", label, field, x, y)
		}
	}
	if a.Strategy != b.Strategy || a.Shape != b.Shape {
		t.Fatalf("%s: strategy/shape differs", label)
	}
	if len(a.Circles) != len(b.Circles) {
		t.Fatalf("%s: %d vs %d circles", label, len(a.Circles), len(b.Circles))
	}
	for i := range a.Circles {
		if a.Circles[i] != b.Circles[i] {
			t.Fatalf("%s: circle %d differs: %+v vs %+v", label, i, a.Circles[i], b.Circles[i])
		}
	}
	if len(a.Ellipses) != len(b.Ellipses) {
		t.Fatalf("%s: %d vs %d ellipses", label, len(a.Ellipses), len(b.Ellipses))
	}
	for i := range a.Ellipses {
		if a.Ellipses[i] != b.Ellipses[i] {
			t.Fatalf("%s: ellipse %d differs: %+v vs %+v", label, i, a.Ellipses[i], b.Ellipses[i])
		}
	}
	feq("LogPost", a.LogPost, b.LogPost)
	if a.Iterations != b.Iterations {
		t.Fatalf("%s: iterations %d vs %d", label, a.Iterations, b.Iterations)
	}
	if a.Partitions != b.Partitions {
		t.Fatalf("%s: partitions %d vs %d", label, a.Partitions, b.Partitions)
	}
	feq("AcceptRate", a.AcceptRate, b.AcceptRate)
	feq("GlobalRejectRate", a.GlobalRejectRate, b.GlobalRejectRate)
	feq("LocalRejectRate", a.LocalRejectRate, b.LocalRejectRate)
	if a.Barriers != b.Barriers {
		t.Fatalf("%s: barriers %d vs %d", label, a.Barriers, b.Barriers)
	}
	feq("SwapRate", a.SwapRate, b.SwapRate)
	if a.Merged != b.Merged || a.Disputed != b.Disputed {
		t.Fatalf("%s: merge metadata differs", label)
	}
	if len(a.Regions) != len(b.Regions) {
		t.Fatalf("%s: %d vs %d regions", label, len(a.Regions), len(b.Regions))
	}
	for i := range a.Regions {
		ra, rb := a.Regions[i], b.Regions[i]
		if ra.X0 != rb.X0 || ra.Y0 != rb.Y0 || ra.X1 != rb.X1 || ra.Y1 != rb.Y1 {
			t.Fatalf("%s: region %d bounds differ", label, i)
		}
		feq("region lambda", ra.Lambda, rb.Lambda)
		if ra.Circles != rb.Circles || ra.Iters != rb.Iters || ra.Converged != rb.Converged {
			t.Fatalf("%s: region %d differs: %+v vs %+v", label, i, ra, rb)
		}
	}
}

func TestObserverInvariance(t *testing.T) {
	_, w, h, cases := determinismCases(t)
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			pix := tc.pix
			plain, err := Detect(pix, w, h, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			observed := tc.opt
			calls := 0
			observed.Observer = func(p Progress) {
				calls++
				if p.Strategy != tc.opt.Strategy {
					t.Errorf("observer got strategy %v", p.Strategy)
				}
				if p.Iter <= 0 {
					t.Errorf("observer got non-positive Iter %d", p.Iter)
				}
			}
			withObs, err := Detect(pix, w, h, observed)
			if err != nil {
				t.Fatal(err)
			}
			if calls == 0 {
				t.Fatal("observer never called")
			}
			mustEqualResults(t, tc.name, plain, withObs)
		})
	}
}

func TestCheckpointResumeBitIdentical(t *testing.T) {
	_, w, h, cases := determinismCases(t)
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			pix := tc.pix
			// One uninterrupted run yields both the reference result and
			// mid-run checkpoints (capturing is read-only, so the run is
			// unperturbed — TestObserverInvariance's logic applies).
			var blobs [][]byte
			opt := tc.opt
			opt.OnCheckpoint = func(cp *Checkpoint) {
				blob, err := cp.MarshalBinary()
				if err != nil {
					t.Errorf("marshal: %v", err)
					return
				}
				blobs = append(blobs, blob)
			}
			baseline, err := Detect(pix, w, h, opt)
			if err != nil {
				t.Fatal(err)
			}
			if len(blobs) == 0 {
				t.Fatal("run finished without emitting a mid-run checkpoint; enlarge the test scene")
			}
			// Resume from every captured checkpoint; each continuation
			// must reproduce the uninterrupted result bit for bit.
			for i, blob := range blobs {
				var cp Checkpoint
				if err := cp.UnmarshalBinary(blob); err != nil {
					t.Fatalf("unmarshal checkpoint %d: %v", i, err)
				}
				resumed, err := DetectResume(context.Background(), pix, w, h, Options{}, &cp)
				if err != nil {
					t.Fatalf("resume from checkpoint %d: %v", i, err)
				}
				mustEqualResults(t, tc.name, baseline, resumed)
			}
		})
	}
}

func TestCheckpointAfterCancellation(t *testing.T) {
	// The operational story: a run is interrupted, the last checkpoint
	// survives, and resuming completes with the uninterrupted result.
	pix, w, h, _ := determinismCases(t)
	opt := Options{Strategy: Periodic, MeanRadius: 7, Iterations: 16000, Seed: 11, Workers: 2}
	baseline, err := Detect(pix, w, h, opt)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var last *Checkpoint
	interrupted := opt
	interrupted.OnCheckpoint = func(cp *Checkpoint) {
		last = cp
		cancel() // simulate SIGINT right after the first checkpoint
	}
	if _, err := DetectContext(ctx, pix, w, h, interrupted); err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if last == nil {
		t.Fatal("no checkpoint captured before cancellation")
	}
	resumed, err := DetectResume(context.Background(), pix, w, h, Options{}, last)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualResults(t, "periodic-cancel", baseline, resumed)
}

func TestResumeRejectsWrongImage(t *testing.T) {
	pix, w, h, _ := determinismCases(t)
	var cp *Checkpoint
	opt := Options{Strategy: Sequential, MeanRadius: 7, Iterations: 16000, Seed: 11}
	opt.OnCheckpoint = func(c *Checkpoint) {
		if cp == nil {
			cp = c
		}
	}
	if _, err := Detect(pix, w, h, opt); err != nil {
		t.Fatal(err)
	}
	if cp == nil {
		t.Fatal("no checkpoint captured")
	}
	other := append([]float64(nil), pix...)
	other[0] = 1 - other[0]
	if _, err := DetectResume(context.Background(), other, w, h, Options{}, cp); err == nil {
		t.Fatal("resume accepted a different image")
	}
	if _, err := DetectResume(context.Background(), pix, w-1, h, Options{}, cp); err == nil {
		t.Fatal("resume accepted different dimensions")
	}
	if _, err := DetectResume(context.Background(), pix, w, h, Options{}, nil); err == nil {
		t.Fatal("resume accepted a nil checkpoint")
	}
}

func TestPartitionedStrategiesHonourContext(t *testing.T) {
	// Satellite fix: Intelligent/Blind/Converge-mode runs used to ignore
	// ctx once started; they must now stop at the next chunk boundary.
	pix, w, h, _ := determinismCases(t)
	for _, opt := range []Options{
		{Strategy: Intelligent, MeanRadius: 7, Iterations: 200000, Seed: 11, Workers: 2},
		{Strategy: Blind, MeanRadius: 7, Iterations: 200000, Seed: 11, Workers: 2},
		{Strategy: Sequential, Converge: true, MeanRadius: 7, Iterations: 200000, Seed: 11},
	} {
		ctx, cancel := context.WithCancel(context.Background())
		fired := false
		opt.Observer = func(Progress) {
			if !fired {
				fired = true
				cancel() // cancel at the first chunk boundary, mid-run
			}
		}
		if _, err := DetectContext(ctx, pix, w, h, opt); err != context.Canceled {
			t.Fatalf("%v: cancelled run returned %v", opt.Strategy, err)
		}
		cancel()
	}
}

func TestPartitionedLogPostComparable(t *testing.T) {
	// Satellite fix: partitioned strategies used to report NaN; now all
	// strategies score their final model against the whole image.
	pix, w, h, _ := determinismCases(t)
	for _, s := range Strategies() {
		res, err := Detect(pix, w, h, Options{
			Strategy: s, MeanRadius: 7, Iterations: 16000, Seed: 11, Workers: 2,
		})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if math.IsNaN(res.LogPost) {
			t.Errorf("%v: LogPost is NaN", s)
		}
		if res.LogPost <= 0 {
			// Every strategy finds most artifacts on this scene, and a
			// configuration explaining real artifacts scores far above
			// the empty model's 0.
			t.Errorf("%v: LogPost = %v, want > 0", s, res.LogPost)
		}
	}
}

// TestScreenInvariance pins the coarse-to-fine guarantee end to end:
// enabling the pyramid screen changes the work per proposal but never
// the sampled chain. Every strategy must produce bit-identical results
// with ScreenMinArea set low enough that real proposals take the
// screened path.
func TestScreenInvariance(t *testing.T) {
	_, w, h, cases := determinismCases(t)
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			pix := tc.pix
			plain, err := Detect(pix, w, h, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			screened := tc.opt
			// Mean radius 7 → typical area ≈ 154 px²; every birth and
			// most replacements clear this threshold, so the screen is
			// genuinely exercised rather than vacuously bypassed.
			screened.ScreenMinArea = 80
			withScreen, err := Detect(pix, w, h, screened)
			if err != nil {
				t.Fatal(err)
			}
			mustEqualResults(t, tc.name, plain, withScreen)
		})
	}
}
