package e2e

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"sync/atomic"
	"testing"
	"time"

	"repro/pkg/api"
	"repro/pkg/client"
)

var streamCases = []e2eCase{
	{
		ID:       "C00401",
		Title:    "Cancelled jobs report one wire contract, queued or running",
		Priority: 1,
		Smoke:    true,
		Run:      caseCancelContract,
	},
	{
		ID:       "C00402",
		Title:    "SSE stream survives a flapping proxy (503s and cut connections)",
		Priority: 2,
		Smoke:    false,
		Run:      caseFlakyProxyStream,
	},
}

// C00401: the e2e pin of the cancel-consistency fix. One job is
// cancelled while running, another while still queued behind it; both
// must report state "cancelled" AND error "cancelled" — a client must
// not need to know where in the pipeline the cancel landed.
func caseCancelContract(t *testing.T) {
	d := startDaemon(t, t.TempDir(), "127.0.0.1:0", "-job-slots", "1", "-queue", "4")
	ctx := context.Background()

	running := d.submit(t, matrixScene, matrixOptions(100_000_000, 1))
	queued := d.submit(t, matrixScene, matrixOptions(100_000_000, 2))
	d.waitState(t, running.ID, api.StateRunning)
	if st := d.getJob(t, queued.ID); st.State != api.StatePending {
		t.Fatalf("second job is %q, want pending", st.State)
	}

	if _, err := d.c.Cancel(ctx, queued.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := d.c.Cancel(ctx, running.ID); err != nil {
		t.Fatal(err)
	}
	q := d.waitDone(t, queued.ID, 60*time.Second)
	r := d.waitDone(t, running.ID, 60*time.Second)
	for name, st := range map[string]*api.JobStatus{"queued": q, "running": r} {
		if st.State != api.StateCancelled {
			t.Errorf("%s-cancelled job state %q", name, st.State)
		}
		if st.Error != "cancelled" {
			t.Errorf("%s-cancelled job error %q, want %q", name, st.Error, "cancelled")
		}
	}
}

// C00402: the reconnect budget must absorb infrastructure flaps, not
// just daemon restarts. A reverse proxy in front of the daemon answers
// 503 on every other stream attempt and cuts one streaming connection
// mid-flight; the client's Wait must ride it out and deliver the
// terminal result, with the 503s consumed as transient retries (the
// pre-fix client died on the first 503).
func caseFlakyProxyStream(t *testing.T) {
	d := startDaemon(t, t.TempDir(), "127.0.0.1:0", "-job-slots", "1", "-checkpoint-every", "10000")

	target, err := url.Parse(d.url)
	if err != nil {
		t.Fatal(err)
	}
	rp := httputil.NewSingleHostReverseProxy(target)
	rp.FlushInterval = -1 // stream SSE bytes through immediately

	var streamConns, rejected atomic.Int64
	var cutOnce atomic.Bool
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Accept") == "text/event-stream" {
			n := streamConns.Add(1)
			if n%2 == 1 { // every odd attempt bounces
				rejected.Add(1)
				w.WriteHeader(http.StatusServiceUnavailable)
				return
			}
			if n == 2 && !cutOnce.Swap(true) {
				// Cut the first successful stream mid-flight: proxy it
				// with a short deadline so the copy is severed while the
				// job is still running.
				ctx, cancel := context.WithTimeout(r.Context(), 500*time.Millisecond)
				defer cancel()
				rp.ServeHTTP(w, r.WithContext(ctx))
				return
			}
		}
		rp.ServeHTTP(w, r)
	}))
	defer proxy.Close()

	c, err := client.New(proxy.URL, client.WithRetry(120, 100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	const iters, seed = 2_000_000, 12
	st, err := c.Submit(context.Background(), api.JobSpec{Scene: &matrixScene, Options: matrixOptions(iters, seed)})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(context.Background(), st.ID, nil)
	if err != nil {
		t.Fatalf("stream did not survive the flapping proxy: %v", err)
	}
	doneResult(t, final)
	if rejected.Load() == 0 {
		t.Fatal("proxy never flapped; the case exercised nothing")
	}
	if streamConns.Load() < 3 {
		t.Fatalf("only %d stream attempts; reconnection never happened", streamConns.Load())
	}
	t.Logf("stream attempts %d, 503 flaps %d", streamConns.Load(), rejected.Load())
}
