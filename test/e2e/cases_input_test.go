package e2e

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/testcorpus"
	"repro/pkg/api"
)

var inputCases = []e2eCase{
	{
		ID:       "C00301",
		Title:    "Fuzz corpus replayed against a live daemon: no 5xx, typed rejects",
		Priority: 2,
		Smoke:    true,
		Run:      caseMalformedCorpusSweep,
	},
	{
		ID:       "C00302",
		Title:    "Hostile requests beyond the decoder get typed envelopes",
		Priority: 2,
		Smoke:    false,
		Run:      caseHostileRequestContracts,
	},
}

// C00301: every entry of the shared fuzz corpus (internal/testcorpus —
// the same triples the fuzzer seeds from) is POSTed at a live daemon.
// The black-box contract: never a 5xx, never a dropped connection,
// every rejection a typed envelope, every acceptance a well-formed
// JobStatus — and the daemon is still healthy afterwards.
func caseMalformedCorpusSweep(t *testing.T) {
	d := startDaemon(t, t.TempDir(), "127.0.0.1:0", "-job-slots", "1")
	ctx := context.Background()

	for _, e := range testcorpus.Submit() {
		u := d.url + api.Prefix + "/jobs"
		if e.RawQuery != "" {
			u += "?" + e.RawQuery
		}
		req, err := http.NewRequest(http.MethodPost, u, bytes.NewReader(e.Body))
		if err != nil {
			t.Fatal(err)
		}
		if e.ContentType != "" {
			req.Header.Set("Content-Type", e.ContentType)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s: connection-level failure: %v", e.Name, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: reading response: %v", e.Name, err)
		}
		switch {
		case resp.StatusCode >= 500:
			t.Errorf("%s: daemon answered %d:\n%s", e.Name, resp.StatusCode, body)
		case resp.StatusCode >= 400:
			var env api.ErrorEnvelope
			dec := json.NewDecoder(bytes.NewReader(body))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&env); err != nil || env.Code == "" || env.Message == "" {
				t.Errorf("%s: %d body is not a typed envelope (%v):\n%s", e.Name, resp.StatusCode, err, body)
			}
		default:
			var st api.JobStatus
			if err := json.Unmarshal(body, &st); err != nil || st.ID == "" {
				t.Errorf("%s: accepted (%d) but body is not a JobStatus (%v):\n%s", e.Name, resp.StatusCode, err, body)
				continue
			}
			// Don't let accepted corpus jobs burn CPU under the rest of
			// the sweep (cancel is idempotent, even if the tiny ones
			// already finished).
			if _, err := d.c.Cancel(ctx, st.ID); err != nil {
				t.Errorf("%s: cancelling accepted job: %v", e.Name, err)
			}
		}
	}

	if h, err := d.c.Health(ctx); err != nil || h.Status != "ok" {
		t.Fatalf("daemon unhealthy after the sweep: %+v, %v", h, err)
	}
	// And it still does real work.
	st := d.submit(t, matrixScene, matrixOptions(20_000, 9))
	doneResult(t, d.waitDone(t, st.ID, 120*time.Second))
}

// C00302: hostile traffic the submit decoder never sees — wrong
// methods, unknown routes, oversized garbage bodies, bad stream
// requests. All must produce typed envelopes with correct status
// codes, never 5xx or hangs.
func caseHostileRequestContracts(t *testing.T) {
	d := startDaemon(t, t.TempDir(), "127.0.0.1:0", "-job-slots", "1")

	expectEnvelope := func(name string, resp *http.Response, wantStatus int, wantCode string) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Errorf("%s: status %d, want %d", name, resp.StatusCode, wantStatus)
			return
		}
		var env api.ErrorEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Errorf("%s: body is not an envelope: %v", name, err)
			return
		}
		if env.Code != wantCode || env.Message == "" {
			t.Errorf("%s: envelope %+v, want code %q", name, env, wantCode)
		}
	}

	// Unknown route.
	resp, err := http.Get(d.url + "/v1/definitely-not-a-route")
	if err != nil {
		t.Fatal(err)
	}
	expectEnvelope("unknown route", resp, http.StatusNotFound, api.CodeNotFound)

	// Wrong method on a real route (Allow header included).
	req, _ := http.NewRequest(http.MethodDelete, d.url+api.Prefix+"/version", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if allow := resp.Header.Get("Allow"); allow != "GET" {
		t.Errorf("405 Allow header %q", allow)
	}
	expectEnvelope("wrong method", resp, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed)

	// SSE stream for a job that does not exist.
	req, _ = http.NewRequest(http.MethodGet, d.url+api.Prefix+"/jobs/job-99999999/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	expectEnvelope("events for unknown job", resp, http.StatusNotFound, api.CodeNotFound)

	// A multi-megabyte garbage upload: rejected as a bad image, not by
	// falling over.
	garbage := bytes.Repeat([]byte("\xde\xad\xbe\xef"), 1<<20) // 4 MiB
	resp, err = http.Post(d.url+api.Prefix+"/jobs?radius=5", "image/png", bytes.NewReader(garbage))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode >= 500 || resp.StatusCode < 400 {
		t.Errorf("oversized garbage upload answered %d, want a 4xx", resp.StatusCode)
	}
	var env api.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Code == "" {
		t.Errorf("oversized upload rejection is not a typed envelope: %v", err)
	}
	resp.Body.Close()

	// Cancel on an already-terminal job is an idempotent no-op: it must
	// neither error nor clobber the terminal state.
	st := d.submit(t, matrixScene, matrixOptions(10_000, 3))
	d.waitDone(t, st.ID, 120*time.Second)
	after, cerr := d.c.Cancel(context.Background(), st.ID)
	if cerr != nil {
		t.Errorf("cancel of a done job errored: %v", cerr)
	} else if after.State != api.StateDone {
		t.Errorf("cancel of a done job rewrote its state to %q", after.State)
	}

	// Cancel of an unknown job is the typed 404.
	_, cerr = d.c.Cancel(context.Background(), "job-99999999")
	var cenv *api.ErrorEnvelope
	if !errors.As(cerr, &cenv) || cenv.Code != api.CodeNotFound {
		t.Errorf("cancel of an unknown job: %v, want a %s envelope", cerr, api.CodeNotFound)
	}

	if h, err := d.c.Health(context.Background()); err != nil || h.Status != "ok" {
		t.Fatalf("daemon unhealthy after hostile traffic: %+v, %v", h, err)
	}
}
