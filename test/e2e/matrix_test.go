package e2e

import (
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// e2eCase is one cataloged matrix entry. IDs are stable and never
// reused; test/doc/cases.md is the human-readable catalog and
// TestCatalogMatchesDoc keeps the two in lockstep.
type e2eCase struct {
	ID       string
	Title    string
	Priority int  // 1 = must never break, 2 = important
	Smoke    bool // runs on every PR; the rest only in the full matrix
	Run      func(t *testing.T)
}

// The registry is assembled from the per-area case files:
// cases_load_test.go, cases_chaos_test.go, cases_checkpoint_test.go,
// cases_input_test.go, cases_stream_test.go, cases_cluster_test.go.
func allCases() []e2eCase {
	var cases []e2eCase
	cases = append(cases, loadCases...)
	cases = append(cases, chaosCases...)
	cases = append(cases, checkpointCases...)
	cases = append(cases, inputCases...)
	cases = append(cases, streamCases...)
	cases = append(cases, clusterCases...)
	return cases
}

// TestCases drives the matrix. Subtests are named by case ID, so one
// case runs with: go test ./test/e2e -run 'TestCases/C00103' -v
func TestCases(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	full := fullMatrix()
	for _, c := range allCases() {
		c := c
		t.Run(c.ID, func(t *testing.T) {
			t.Logf("%s [p%d smoke=%v] %s", c.ID, c.Priority, c.Smoke, c.Title)
			if !full && !c.Smoke {
				t.Skip("full-matrix case; set E2E_MATRIX=full")
			}
			c.Run(t)
		})
	}
}

// TestCatalogMatchesDoc pins the registry to the committed catalog:
// every registered case must appear in test/doc/cases.md with the same
// title, priority and smoke tag, and vice versa. It needs no binaries,
// so the doc can never go stale even in -short runs.
func TestCatalogMatchesDoc(t *testing.T) {
	blob, err := os.ReadFile("../doc/cases.md")
	if err != nil {
		t.Fatal(err)
	}
	row := regexp.MustCompile(`^\|\s*(C\d{5})\s*\|([^|]*)\|\s*p(\d)\s*\|\s*(yes|no)\s*\|`)
	documented := map[string]e2eCase{}
	for _, line := range strings.Split(string(blob), "\n") {
		m := row.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		prio, _ := strconv.Atoi(m[3])
		if _, dup := documented[m[1]]; dup {
			t.Errorf("case %s documented twice", m[1])
		}
		documented[m[1]] = e2eCase{
			ID: m[1], Title: strings.TrimSpace(m[2]), Priority: prio, Smoke: m[4] == "yes",
		}
	}
	if len(documented) == 0 {
		t.Fatal("no case rows parsed from test/doc/cases.md")
	}

	registered := map[string]e2eCase{}
	for _, c := range allCases() {
		if _, dup := registered[c.ID]; dup {
			t.Errorf("case ID %s registered twice", c.ID)
		}
		registered[c.ID] = c
	}

	var ids []string
	for id := range registered {
		ids = append(ids, id)
	}
	for id := range documented {
		if _, ok := registered[id]; !ok {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		reg, inReg := registered[id]
		doc, inDoc := documented[id]
		switch {
		case !inReg:
			t.Errorf("%s is in the catalog but not registered in code", id)
		case !inDoc:
			t.Errorf("%s is registered in code but missing from test/doc/cases.md", id)
		case reg.Title != doc.Title || reg.Priority != doc.Priority || reg.Smoke != doc.Smoke:
			t.Errorf("%s drifted:\n  code: %q p%d smoke=%v\n  doc:  %q p%d smoke=%v",
				id, reg.Title, reg.Priority, reg.Smoke, doc.Title, doc.Priority, doc.Smoke)
		}
	}

	if len(registered) < 12 {
		t.Errorf("matrix has %d cases; the catalog floor is 12", len(registered))
	}
	smoke := 0
	for _, c := range registered {
		if c.Smoke {
			smoke++
		}
	}
	if smoke == 0 {
		t.Error("no smoke-tagged cases: PRs would run nothing")
	}
}
