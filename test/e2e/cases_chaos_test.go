package e2e

import (
	"math/rand"
	"os"
	"reflect"
	"strconv"
	"syscall"
	"testing"
	"time"

	"repro/pkg/api"
)

var chaosCases = []e2eCase{
	{
		ID:       "C00101",
		Title:    "SIGKILL mid-job resumes from checkpoint bit-identically",
		Priority: 1,
		Smoke:    true,
		Run:      caseKillCheckpointResume,
	},
	{
		ID:       "C00102",
		Title:    "SIGKILL before any checkpoint restarts from scratch",
		Priority: 1,
		Smoke:    false,
		Run:      caseKillNoCheckpointScratchRestart,
	},
	{
		ID:       "C00103",
		Title:    "Corrupt checkpoint falls back to a scratch restart",
		Priority: 1,
		Smoke:    false,
		Run:      caseCorruptCheckpointRecovery,
	},
	{
		ID:       "C00104",
		Title:    "SIGTERM drains gracefully and the job resumes",
		Priority: 2,
		Smoke:    false,
		Run:      caseSigtermDrainResume,
	},
	{
		ID:       "C00105",
		Title:    "Randomized repeated kills still land the exact result",
		Priority: 2,
		Smoke:    false,
		Run:      caseRandomizedKillLoop,
	},
}

// restartDaemon brings a dead daemon back on the SAME address over the
// same spool, so an attached watcher's reconnects land on the reborn
// process.
func restartDaemon(t *testing.T, d *daemon, extraArgs ...string) *daemon {
	t.Helper()
	return startDaemon(t, d.spool, d.addr, extraArgs...)
}

// C00101: the flagship crash case. A watcher stream is attached when
// the daemon is SIGKILLed mid-job (after a checkpoint exists); the
// restarted daemon resumes from the checkpoint; the watcher must ride
// through the crash, see progress advance strictly (replayed events
// deduplicated, no scratch-restart snapshots), and the final result
// must be bit-identical to an uninterrupted run.
func caseKillCheckpointResume(t *testing.T) {
	const iters, seed = 800_000, 33
	want := directViewAsync(t, iters, seed)

	d := startDaemon(t, t.TempDir(), "127.0.0.1:0", "-job-slots", "1", "-checkpoint-every", "10000")
	st := d.submit(t, matrixScene, matrixOptions(iters, seed))
	watch := watchJob(t, d.url, st.ID, 240, 250*time.Millisecond)

	d.waitCheckpoint(t, st.ID)
	d.kill(t, syscall.SIGKILL)

	d2 := restartDaemon(t, d, "-job-slots", "1", "-checkpoint-every", "10000")
	got := doneResult(t, d2.waitDone(t, st.ID, 180*time.Second))
	if w := want(); !reflect.DeepEqual(got, w) {
		t.Fatalf("crash-resumed result differs from uninterrupted run\ngot  %+v\nwant %+v", got, w)
	}

	w := mustWatch(t, watch, 60*time.Second)
	if w.restarts != 0 {
		t.Fatalf("checkpoint resume must not signal a scratch restart (saw %d)", w.restarts)
	}
	if len(w.iters) == 0 {
		t.Fatal("watcher saw no progress at all")
	}
	if sr := doneResult(t, w.final); !reflect.DeepEqual(sr, got) {
		t.Fatal("stream terminal result differs from polled result")
	}
}

// C00102: kill before the first checkpoint. The restarted daemon must
// requeue the job from scratch, mark it Restarted on the wire, and the
// watcher must observe the rewind (not a frozen stream) and still
// collect the exact result — determinism makes scratch == uninterrupted.
func caseKillNoCheckpointScratchRestart(t *testing.T) {
	const iters, seed = 500_000, 44
	want := directViewAsync(t, iters, seed)

	// A checkpoint cadence beyond the job length: the crash window is
	// guaranteed checkpoint-free.
	d := startDaemon(t, t.TempDir(), "127.0.0.1:0", "-job-slots", "1", "-checkpoint-every", "2000000000")
	st := d.submit(t, matrixScene, matrixOptions(iters, seed))
	watch := watchJob(t, d.url, st.ID, 240, 250*time.Millisecond)

	// Let the run make real progress first, so the pre-crash watermark
	// is high enough that a frozen stream would be unmistakable.
	deadline := time.Now().Add(60 * time.Second)
	for {
		cur := d.getJob(t, st.ID)
		if cur.State == api.StateRunning && cur.Progress != nil && cur.Progress.Iter >= 20_000 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never built up pre-crash progress")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := os.Stat(d.checkpointPath(st.ID)); err == nil {
		t.Fatal("test premise broken: a checkpoint exists")
	}
	d.kill(t, syscall.SIGKILL)

	d2 := restartDaemon(t, d, "-job-slots", "1", "-checkpoint-every", "2000000000")
	final := d2.waitDone(t, st.ID, 180*time.Second)
	if !final.Restarted {
		t.Fatal("scratch-recovered job not marked Restarted on the wire")
	}
	got := doneResult(t, final)
	if w := want(); !reflect.DeepEqual(got, w) {
		t.Fatalf("scratch-restarted result differs from uninterrupted run\ngot  %+v\nwant %+v", got, w)
	}

	w := mustWatch(t, watch, 60*time.Second)
	if w.restarts == 0 {
		t.Fatal("watcher never saw the Restarted snapshot; pre-fix clients froze here")
	}
	if sr := doneResult(t, w.final); !reflect.DeepEqual(sr, got) {
		t.Fatal("stream terminal result differs from polled result")
	}
}

// C00103: a checkpoint exists but is garbage (torn disk, bad deploy).
// Recovery must reject it loudly and restart from scratch rather than
// resume into a corrupted chain.
func caseCorruptCheckpointRecovery(t *testing.T) {
	const iters, seed = 500_000, 55
	want := directViewAsync(t, iters, seed)

	d := startDaemon(t, t.TempDir(), "127.0.0.1:0", "-job-slots", "1", "-checkpoint-every", "10000")
	st := d.submit(t, matrixScene, matrixOptions(iters, seed))
	d.waitCheckpoint(t, st.ID)
	d.kill(t, syscall.SIGKILL)

	if err := os.WriteFile(d.checkpointPath(st.ID), []byte("definitely not a gob checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}

	d2 := restartDaemon(t, d, "-job-slots", "1", "-checkpoint-every", "10000")
	final := d2.waitDone(t, st.ID, 180*time.Second)
	if !final.Restarted {
		t.Fatal("corrupt-checkpoint recovery not marked Restarted")
	}
	got := doneResult(t, final)
	if w := want(); !reflect.DeepEqual(got, w) {
		t.Fatalf("corrupt-checkpoint recovery produced a different result\ngot  %+v\nwant %+v", got, w)
	}
}

// C00104: SIGTERM is the polite path — the daemon drains, the spool
// stays resumable (record + checkpoint), and the restarted daemon
// finishes the job from its checkpoint, NOT from scratch.
func caseSigtermDrainResume(t *testing.T) {
	const iters, seed = 800_000, 66
	want := directViewAsync(t, iters, seed)

	d := startDaemon(t, t.TempDir(), "127.0.0.1:0", "-job-slots", "1", "-checkpoint-every", "10000")
	st := d.submit(t, matrixScene, matrixOptions(iters, seed))
	d.waitCheckpoint(t, st.ID)
	d.kill(t, syscall.SIGTERM)

	if _, err := os.Stat(d.checkpointPath(st.ID)); err != nil {
		t.Fatalf("checkpoint gone after graceful shutdown: %v", err)
	}

	d2 := restartDaemon(t, d, "-job-slots", "1", "-checkpoint-every", "10000")
	final := d2.waitDone(t, st.ID, 180*time.Second)
	if final.Restarted {
		t.Fatal("graceful drain left a checkpoint; resume must not be a scratch restart")
	}
	got := doneResult(t, final)
	if w := want(); !reflect.DeepEqual(got, w) {
		t.Fatalf("drain-resumed result differs from uninterrupted run\ngot  %+v\nwant %+v", got, w)
	}
}

// C00105: the randomized chaos loop. Several kills at random moments —
// randomly SIGKILL or SIGTERM — with a live watcher attached the whole
// time. Whatever mix of checkpoint resumes and scratch restarts the
// timing produces, the terminal result must be exact and the stream's
// ordering contract must hold (strict advance, rewinds only at
// Restarted snapshots). The seed is logged and overridable via
// E2E_CHAOS_SEED for deterministic replay of a failure.
func caseRandomizedKillLoop(t *testing.T) {
	seedStr := os.Getenv("E2E_CHAOS_SEED")
	chaosSeed := time.Now().UnixNano()
	if seedStr != "" {
		v, err := strconv.ParseInt(seedStr, 10, 64)
		if err != nil {
			t.Fatalf("bad E2E_CHAOS_SEED: %v", err)
		}
		chaosSeed = v
	}
	t.Logf("chaos seed %d (replay with E2E_CHAOS_SEED=%d)", chaosSeed, chaosSeed)
	rng := rand.New(rand.NewSource(chaosSeed))

	const iters, seed = 1_200_000, 77
	want := directViewAsync(t, iters, seed)

	args := []string{"-job-slots", "1", "-checkpoint-every", "10000"}
	d := startDaemon(t, t.TempDir(), "127.0.0.1:0", args...)
	st := d.submit(t, matrixScene, matrixOptions(iters, seed))
	watch := watchJob(t, d.url, st.ID, 480, 250*time.Millisecond)

	const kills = 3
	for k := 0; k < kills; k++ {
		// Wait for the job to be running again — tolerating that it may
		// simply finish between kills.
		deadline := time.Now().Add(120 * time.Second)
		cur := d.getJob(t, st.ID)
		for cur.State != api.StateRunning && !cur.State.Terminal() {
			if time.Now().After(deadline) {
				t.Fatalf("job stuck in %q before kill %d", cur.State, k+1)
			}
			time.Sleep(5 * time.Millisecond)
			cur = d.getJob(t, st.ID)
		}
		if cur.State.Terminal() {
			t.Logf("job finished before kill %d; chaos window closed early", k+1)
			break
		}
		// Random dwell: sometimes inside the first checkpoint interval
		// (scratch restart), sometimes well past it (checkpoint resume).
		time.Sleep(time.Duration(50+rng.Intn(1200)) * time.Millisecond)
		if cur := d.getJob(t, st.ID); cur.State.Terminal() {
			t.Logf("job finished before kill %d; chaos window closed early", k+1)
			break
		}
		sig := syscall.SIGKILL
		if rng.Intn(2) == 0 {
			sig = syscall.SIGTERM
		}
		t.Logf("kill %d: %v", k+1, sig)
		d.kill(t, sig)
		d = restartDaemon(t, d, args...)
	}

	got := doneResult(t, d.waitDone(t, st.ID, 300*time.Second))
	if w := want(); !reflect.DeepEqual(got, w) {
		t.Fatalf("chaos-survivor result differs from uninterrupted run\ngot  %+v\nwant %+v", got, w)
	}
	w := mustWatch(t, watch, 120*time.Second)
	t.Logf("watcher: %d progress events, %d scratch restarts", len(w.iters), w.restarts)
	if sr := doneResult(t, w.final); !reflect.DeepEqual(sr, got) {
		t.Fatal("stream terminal result differs from polled result")
	}
}
