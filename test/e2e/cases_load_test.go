package e2e

import (
	"context"
	"errors"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/pkg/api"
	"repro/pkg/client"
)

var loadCases = []e2eCase{
	{
		ID:       "C00001",
		Title:    "Concurrent clients get bit-identical results",
		Priority: 1,
		Smoke:    true,
		Run:      caseConcurrentClients,
	},
	{
		ID:       "C00002",
		Title:    "Full queue answers typed 429 and recovers",
		Priority: 1,
		Smoke:    true,
		Run:      caseQueueSaturation,
	},
	{
		ID:       "C00003",
		Title:    "Sustained fixed-QPS load completes without 5xx",
		Priority: 2,
		Smoke:    false,
		Run:      caseFixedQPSLoad,
	},
}

// C00001: four clients (each its own connection) submit concurrently;
// two share a seed and must agree with each other, and every result
// must be bit-identical to a direct library run with the same options.
func caseConcurrentClients(t *testing.T) {
	d := startDaemon(t, t.TempDir(), "127.0.0.1:0", "-job-slots", "2")
	const iters = 60_000
	seeds := []uint64{5, 5, 6, 7}

	results := make([]api.ResultView, len(seeds))
	var wg sync.WaitGroup
	errs := make([]error, len(seeds))
	for i, seed := range seeds {
		wg.Add(1)
		go func(i int, seed uint64) {
			defer wg.Done()
			c, err := client.New(d.url)
			if err != nil {
				errs[i] = err
				return
			}
			st, err := c.Submit(context.Background(), api.JobSpec{Scene: &matrixScene, Options: matrixOptions(iters, seed)})
			if err != nil {
				errs[i] = err
				return
			}
			final, err := c.Wait(context.Background(), st.ID, nil)
			if err != nil {
				errs[i] = err
				return
			}
			res, err := final.ResultView()
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = normalize(*res)
		}(i, seed)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Fatalf("same-seed clients disagree:\n%+v\n%+v", results[0], results[1])
	}
	for i, seed := range seeds {
		if want := directView(t, iters, seed); !reflect.DeepEqual(results[i], want) {
			t.Fatalf("client %d (seed %d) differs from direct Detect\ngot  %+v\nwant %+v", i, seed, results[i], want)
		}
	}
}

// C00002: with one worker and a queue of two, the fourth submission
// must be rejected with a typed queue_full envelope on HTTP 429 — and
// once the queue drains, submissions succeed again.
func caseQueueSaturation(t *testing.T) {
	d := startDaemon(t, t.TempDir(), "127.0.0.1:0", "-job-slots", "1", "-queue", "2")
	ctx := context.Background()

	long := matrixOptions(100_000_000, 1)
	var accepted []*api.JobStatus
	for i := 0; i < 3; i++ { // 1 running + 2 queued
		long.Seed = uint64(i + 1)
		accepted = append(accepted, d.submit(t, matrixScene, long))
	}
	d.waitState(t, accepted[0].ID, api.StateRunning)

	long.Seed = 99
	_, err := d.c.Submit(ctx, api.JobSpec{Scene: &matrixScene, Options: long})
	var env *api.ErrorEnvelope
	if !errors.As(err, &env) {
		t.Fatalf("saturated submit returned %v, want a typed envelope", err)
	}
	if env.Status != http.StatusTooManyRequests || env.Code != api.CodeQueueFull {
		t.Fatalf("saturated submit envelope %+v, want 429/%s", env, api.CodeQueueFull)
	}

	// Backpressure must be transient: cancel the backlog and submit a
	// real job through the recovered queue.
	for _, st := range accepted {
		if _, err := d.c.Cancel(ctx, st.ID); err != nil {
			t.Fatalf("cancel %s: %v", st.ID, err)
		}
	}
	for _, st := range accepted {
		d.waitDone(t, st.ID, 60*time.Second)
	}
	const iters = 30_000
	st := d.submit(t, matrixScene, matrixOptions(iters, 2))
	got := doneResult(t, d.waitDone(t, st.ID, 120*time.Second))
	if want := directView(t, iters, 2); !reflect.DeepEqual(got, want) {
		t.Fatal("post-saturation job result differs from direct Detect")
	}
}

// C00003: a fixed-QPS submission train against a small queue. The
// contract under load: every response is either an accepted job or a
// typed 429 — never a 5xx, never a dropped connection — and every
// accepted job completes.
func caseFixedQPSLoad(t *testing.T) {
	d := startDaemon(t, t.TempDir(), "127.0.0.1:0", "-job-slots", "2", "-queue", "8")
	ctx := context.Background()

	tiny := api.SceneSpec{W: 48, H: 48, Count: 2, MeanRadius: 5, Noise: 0.05, Seed: 4}
	const (
		qps      = 40
		duration = 3 * time.Second
	)
	tick := time.NewTicker(time.Second / qps)
	defer tick.Stop()
	stop := time.After(duration)

	var accepted []string
	var rejected int
	for running := true; running; {
		select {
		case <-stop:
			running = false
		case <-tick.C:
			st, err := d.c.Submit(ctx, api.JobSpec{
				Scene:   &tiny,
				Options: api.OptionsSpec{Strategy: "sequential", MeanRadius: 5, Iterations: 8000, Seed: uint64(len(accepted) + 1)},
			})
			if err != nil {
				var env *api.ErrorEnvelope
				if !errors.As(err, &env) {
					t.Fatalf("submit failed without a typed envelope: %v", err)
				}
				if env.Status != http.StatusTooManyRequests {
					t.Fatalf("unexpected submit error under load: %+v", env)
				}
				rejected++
				continue
			}
			accepted = append(accepted, st.ID)
		}
	}
	t.Logf("load: %d accepted, %d rejected (429)", len(accepted), rejected)
	if len(accepted) == 0 {
		t.Fatal("queue accepted nothing at all")
	}
	for _, id := range accepted {
		st := d.waitDone(t, id, 180*time.Second)
		if st.State != api.StateDone {
			t.Fatalf("job %s under load finished %q (error %q)", id, st.State, st.Error)
		}
	}
	if h, err := d.c.Health(ctx); err != nil || h.Status != "ok" {
		t.Fatalf("daemon unhealthy after load: %+v, %v", h, err)
	}
}
