package e2e

import (
	"bufio"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/pkg/api"
)

var clusterCases = []e2eCase{
	{
		ID:       "C00501",
		Title:    "Two-worker cluster completes jobs bit-identically",
		Priority: 1,
		Smoke:    true,
		Run:      caseClusterBasic,
	},
	{
		ID:       "C00502",
		Title:    "SIGKILLed worker's job is re-leased from its checkpoint bit-identically",
		Priority: 1,
		Smoke:    true,
		Run:      caseClusterWorkerKillResume,
	},
	{
		ID:       "C00503",
		Title:    "Coordinator crash: workers re-register, orphan aborted, exact result",
		Priority: 2,
		Smoke:    false,
		Run:      caseClusterCoordinatorCrash,
	},
	{
		ID:       "C00504",
		Title:    "Worker death before any checkpoint re-leases from scratch",
		Priority: 2,
		Smoke:    false,
		Run:      caseClusterScratchRelease,
	},
}

// ---- cluster harness ------------------------------------------------

// workerProc is one mcmcd -role worker process. Like daemon, its
// stderr goes to a log collected as a failure artifact.
type workerProc struct {
	cmd     *exec.Cmd
	id      string // the coordinator-assigned worker ID, e.g. w-0001
	logPath string
}

// startWorker launches a worker against the coordinator and waits for
// its "worker ready" line (which carries the assigned ID).
func startWorker(t *testing.T, coordURL, spool string, extraArgs ...string) *workerProc {
	t.Helper()
	bin := toolBin(t, "mcmcd")
	args := append([]string{"-role", "worker", "-coordinator", coordURL, "-spool", spool}, extraArgs...)
	cmd := exec.Command(bin, args...)

	logPath := filepath.Join(t.TempDir(), "worker.log")
	logFile, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = logFile
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
		logFile.Close()
		if t.Failed() {
			saveArtifact(t, logPath)
		}
	})

	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if strings.Contains(sc.Text(), "worker ready id=") {
				lines <- sc.Text()
				break
			}
		}
		close(lines)
	}()
	select {
	case line, ok := <-lines:
		if !ok {
			t.Fatalf("worker exited before its readiness line (log: %s)", logPath)
		}
		fields := strings.Fields(line)
		var id string
		for _, f := range fields {
			if strings.HasPrefix(f, "id=") {
				id = strings.TrimPrefix(f, "id=")
			}
		}
		if id == "" {
			t.Fatalf("no worker id in readiness line %q", line)
		}
		return &workerProc{cmd: cmd, id: id, logPath: logPath}
	case <-time.After(30 * time.Second):
		t.Fatal("worker did not become ready")
		return nil
	}
}

// kill sends sig and waits for the worker process to exit.
func (w *workerProc) kill(t *testing.T, sig syscall.Signal) {
	t.Helper()
	if err := w.cmd.Process.Signal(sig); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { w.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("worker did not exit on %v", sig)
	}
}

// clusterArgs is the shared coordinator tuning for these cases: a
// short lease TTL so worker death is detected in seconds, and a tight
// checkpoint cadence so a kill window always has a checkpoint.
func clusterArgs(extra ...string) []string {
	return append([]string{"-role", "coordinator", "-lease-ttl", "2s", "-checkpoint-every", "10000"}, extra...)
}

// nodes fetches the coordinator's worker registry.
func (d *daemon) nodes(t *testing.T) []api.NodeView {
	t.Helper()
	views, err := d.c.Nodes(context.Background())
	if err != nil {
		t.Fatalf("nodes: %v", err)
	}
	return views
}

// leaseHolder returns the worker currently holding a lease on jobID
// (empty when nobody does).
func leaseHolder(views []api.NodeView, jobID string) string {
	for _, n := range views {
		for _, l := range n.Leases {
			if l == jobID {
				return n.ID
			}
		}
	}
	return ""
}

// waitLeaseHolder polls /v1/nodes until some worker holds jobID.
func (d *daemon) waitLeaseHolder(t *testing.T, jobID string) string {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if id := leaseHolder(d.nodes(t), jobID); id != "" {
			return id
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("no worker ever held a lease on %s", jobID)
	return ""
}

// metricValue extracts one scalar metric from the raw exposition.
func (d *daemon) metricValue(t *testing.T, name string) float64 {
	t.Helper()
	m, err := d.c.Metrics(context.Background())
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	v, ok := m.Values[name]
	if !ok {
		t.Fatalf("metric %s not exposed", name)
	}
	return v
}

// C00501: the distributed happy path. A coordinator with two workers
// completes two same-seed jobs bit-identically to direct library runs,
// the registry shows both workers alive with credited completions, and
// the lease metrics add up.
func caseClusterBasic(t *testing.T) {
	const iters, seed = 200_000, 55
	want := directViewAsync(t, iters, seed)

	spool := t.TempDir()
	d := startDaemon(t, spool, "127.0.0.1:0", clusterArgs()...)
	w1 := startWorker(t, d.url, spool, "-job-slots", "1", "-worker-name", "alpha")
	w2 := startWorker(t, d.url, spool, "-job-slots", "1", "-worker-name", "beta")

	a := d.submit(t, matrixScene, matrixOptions(iters, seed))
	b := d.submit(t, matrixScene, matrixOptions(iters, seed))
	ra := doneResult(t, d.waitDone(t, a.ID, 180*time.Second))
	rb := doneResult(t, d.waitDone(t, b.ID, 180*time.Second))

	w := want()
	if !reflect.DeepEqual(ra, w) || !reflect.DeepEqual(rb, w) {
		t.Fatalf("cluster results differ from the direct library run\n a %+v\n b %+v\nwant %+v", ra, rb, w)
	}

	views := d.nodes(t)
	if len(views) != 2 {
		t.Fatalf("registry has %d workers, want 2: %+v", len(views), views)
	}
	completed := int64(0)
	for _, n := range views {
		if n.State != api.NodeAlive {
			t.Errorf("worker %s state %q, want alive", n.ID, n.State)
		}
		if n.ID != w1.id && n.ID != w2.id {
			t.Errorf("registry worker %s matches neither launched worker (%s, %s)", n.ID, w1.id, w2.id)
		}
		completed += n.JobsCompleted
	}
	if completed != 2 {
		t.Errorf("registry credits %d completions, want 2", completed)
	}
	if v := d.metricValue(t, "mcmcd_workers_connected"); v != 2 {
		t.Errorf("mcmcd_workers_connected = %v, want 2", v)
	}
	if v := d.metricValue(t, "mcmcd_leases_granted_total"); v < 2 {
		t.Errorf("mcmcd_leases_granted_total = %v, want >= 2", v)
	}
	if v := d.metricValue(t, "mcmcd_leases_active"); v != 0 {
		t.Errorf("mcmcd_leases_active = %v, want 0 after completion", v)
	}
}

// C00502: the flagship horizontal-scale crash case. Two workers; the
// one holding the lease (identified via /v1/nodes) is SIGKILLed after
// a checkpoint exists. The lease expires on missed heartbeats, the job
// re-leases to the survivor from the latest checkpoint, a live SSE
// watcher rides through without a scratch-restart signal, and the
// result is bit-identical to an uninterrupted run.
func caseClusterWorkerKillResume(t *testing.T) {
	const iters, seed = 800_000, 66
	want := directViewAsync(t, iters, seed)

	spool := t.TempDir()
	d := startDaemon(t, spool, "127.0.0.1:0", clusterArgs()...)
	w1 := startWorker(t, d.url, spool, "-job-slots", "1", "-worker-name", "alpha")
	w2 := startWorker(t, d.url, spool, "-job-slots", "1", "-worker-name", "beta")

	st := d.submit(t, matrixScene, matrixOptions(iters, seed))
	watch := watchJob(t, d.url, st.ID, 240, 250*time.Millisecond)

	holder := d.waitLeaseHolder(t, st.ID)
	victim, survivor := w1, w2
	if holder == w2.id {
		victim, survivor = w2, w1
	}
	d.waitCheckpoint(t, st.ID)
	victim.kill(t, syscall.SIGKILL)

	got := doneResult(t, d.waitDone(t, st.ID, 180*time.Second))
	if w := want(); !reflect.DeepEqual(got, w) {
		t.Fatalf("re-leased result differs from uninterrupted run\ngot  %+v\nwant %+v", got, w)
	}

	// The completion must have come from the survivor, under a fresh
	// lease, after the victim was declared lost.
	views := d.nodes(t)
	var sawLost, sawCredit bool
	for _, n := range views {
		if n.ID == victim.id && n.State == api.NodeLost {
			sawLost = true
		}
		if n.ID == survivor.id && n.JobsCompleted == 1 {
			sawCredit = true
		}
	}
	if !sawLost {
		t.Errorf("victim %s not marked lost in registry: %+v", victim.id, views)
	}
	if !sawCredit {
		t.Errorf("survivor %s not credited with the completion: %+v", survivor.id, views)
	}
	if v := d.metricValue(t, "mcmcd_lease_expiries_total"); v < 1 {
		t.Errorf("mcmcd_lease_expiries_total = %v, want >= 1", v)
	}

	w := mustWatch(t, watch, 60*time.Second)
	if w.restarts != 0 {
		t.Fatalf("checkpoint re-lease must not signal a scratch restart (saw %d)", w.restarts)
	}
	if len(w.iters) == 0 {
		t.Fatal("watcher saw no progress at all")
	}
	if sr := doneResult(t, w.final); !reflect.DeepEqual(sr, got) {
		t.Fatal("stream terminal result differs from polled result")
	}
}

// C00503: coordinator crash with a job in flight. The restarted
// coordinator recovers the job from the spool and re-leases it; the
// workers' heartbeats answer unknown_worker and they re-register under
// fresh IDs; the orphaned first run is aborted at its next progress
// report (lease_expired) and its result discarded; the job still lands
// the exact result.
func caseClusterCoordinatorCrash(t *testing.T) {
	const iters, seed = 800_000, 77
	want := directViewAsync(t, iters, seed)

	spool := t.TempDir()
	d := startDaemon(t, spool, "127.0.0.1:0", clusterArgs()...)
	startWorker(t, d.url, spool, "-job-slots", "1", "-worker-name", "alpha")
	startWorker(t, d.url, spool, "-job-slots", "1", "-worker-name", "beta")

	st := d.submit(t, matrixScene, matrixOptions(iters, seed))
	watch := watchJob(t, d.url, st.ID, 240, 250*time.Millisecond)
	d.waitLeaseHolder(t, st.ID)
	d.waitCheckpoint(t, st.ID)
	d.kill(t, syscall.SIGKILL)

	d2 := restartDaemon(t, d, clusterArgs()...)
	got := doneResult(t, d2.waitDone(t, st.ID, 180*time.Second))
	if w := want(); !reflect.DeepEqual(got, w) {
		t.Fatalf("post-crash result differs from uninterrupted run\ngot  %+v\nwant %+v", got, w)
	}

	// Both workers must have re-registered with the reborn coordinator
	// (its registry is in-memory, so only fresh IDs can appear).
	deadline := time.Now().Add(30 * time.Second)
	for {
		alive := 0
		for _, n := range d2.nodes(t) {
			if n.State == api.NodeAlive {
				alive++
			}
		}
		if alive == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("workers never re-registered: %+v", d2.nodes(t))
		}
		time.Sleep(50 * time.Millisecond)
	}

	w := mustWatch(t, watch, 60*time.Second)
	if sr := doneResult(t, w.final); !reflect.DeepEqual(sr, got) {
		t.Fatal("stream terminal result differs from polled result")
	}
}

// C00504: worker death in the no-checkpoint window. The job re-leases
// from scratch, Restarted is signalled on the wire (the watcher sees
// its watermark rewind, not a frozen stream), and determinism makes
// the scratch re-run land the exact result anyway.
func caseClusterScratchRelease(t *testing.T) {
	const iters, seed = 500_000, 88
	want := directViewAsync(t, iters, seed)

	spool := t.TempDir()
	// Checkpoint cadence beyond the job length: the kill window is
	// guaranteed checkpoint-free.
	d := startDaemon(t, spool, "127.0.0.1:0",
		"-role", "coordinator", "-lease-ttl", "2s", "-checkpoint-every", "2000000000")
	w1 := startWorker(t, d.url, spool, "-job-slots", "1", "-worker-name", "alpha")
	w2 := startWorker(t, d.url, spool, "-job-slots", "1", "-worker-name", "beta")

	st := d.submit(t, matrixScene, matrixOptions(iters, seed))
	watch := watchJob(t, d.url, st.ID, 240, 250*time.Millisecond)

	holder := d.waitLeaseHolder(t, st.ID)
	victim := w1
	if holder == w2.id {
		victim = w2
	}
	// Let the run build up real progress so a frozen stream (rather
	// than a rewind) would be unmistakable.
	deadline := time.Now().Add(60 * time.Second)
	for {
		cur := d.getJob(t, st.ID)
		if cur.State == api.StateRunning && cur.Progress != nil && cur.Progress.Iter >= 20_000 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never built up pre-kill progress")
		}
		time.Sleep(5 * time.Millisecond)
	}
	victim.kill(t, syscall.SIGKILL)

	got := doneResult(t, d.waitDone(t, st.ID, 180*time.Second))
	if w := want(); !reflect.DeepEqual(got, w) {
		t.Fatalf("scratch re-leased result differs from uninterrupted run\ngot  %+v\nwant %+v", got, w)
	}

	w := mustWatch(t, watch, 60*time.Second)
	if w.restarts == 0 {
		t.Fatal("scratch re-lease must signal Restarted to stream watchers")
	}
	if sr := doneResult(t, w.final); !reflect.DeepEqual(sr, got) {
		t.Fatal("stream terminal result differs from polled result")
	}
}
