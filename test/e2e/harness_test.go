// Package e2e is the cataloged end-to-end case matrix over the real
// binaries (mcmcd, mcmcctl) and the published client contract. Every
// case is registered with a stable ID, priority and smoke tag; the
// table in test/doc/cases.md is the human-readable catalog and a test
// fails if the two drift apart.
//
// Modes (env E2E_MATRIX):
//
//	unset/"smoke"  run only smoke-tagged cases  (every PR, default go test ./...)
//	"full"         run the whole matrix         (nightly CI)
//
// Run one case by ID:
//
//	go test ./test/e2e -run 'TestCases/C00102' -v
//
// On failure, each daemon's spool and stderr log are copied under
// $E2E_ARTIFACTS (when set) for offline triage.
package e2e

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/pkg/api"
	"repro/pkg/client"
	"repro/pkg/parmcmc"
)

// fullMatrix reports whether the whole matrix should run (nightly)
// rather than only the smoke subset (every PR).
func fullMatrix() bool { return os.Getenv("E2E_MATRIX") == "full" }

// ---- binary building (lazy, once per run) --------------------------

var (
	buildOnce sync.Once
	binDir    string
	buildLog  string
	buildFail error
)

// toolBin builds cmd/<name> on first use and returns its path. Built
// binaries live in one temp dir for the whole run (removed by
// TestMain) so the matrix pays the compile cost once.
func toolBin(t *testing.T, name string) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "e2e-bin-")
		if err != nil {
			buildFail = err
			return
		}
		binDir = dir
		for _, tool := range []string{"mcmcd", "mcmcctl"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
			cmd.Dir = "../.." // repo root
			if out, err := cmd.CombinedOutput(); err != nil {
				buildFail = err
				buildLog = string(out)
				return
			}
		}
	})
	if buildFail != nil {
		t.Fatalf("building binaries: %v\n%s", buildFail, buildLog)
	}
	return filepath.Join(binDir, name)
}

func TestMain(m *testing.M) {
	code := m.Run()
	if binDir != "" {
		os.RemoveAll(binDir)
	}
	os.Exit(code)
}

// ---- daemon lifecycle ----------------------------------------------

// daemon is one mcmcd process under test. Its stderr is captured to a
// file (collected as a failure artifact), and all assertions go
// through the published typed client.
type daemon struct {
	cmd     *exec.Cmd
	url     string
	addr    string // host:port, reusable for a restart on the same address
	spool   string
	logPath string
	c       *client.Client
}

// startDaemon launches mcmcd on addr ("127.0.0.1:0" for ephemeral)
// over the given spool and waits for the readiness line. The process
// is killed (if still alive) and its artifacts saved when the test
// ends.
func startDaemon(t *testing.T, spool, addr string, extraArgs ...string) *daemon {
	t.Helper()
	bin := toolBin(t, "mcmcd")
	args := append([]string{"-addr", addr, "-spool", spool}, extraArgs...)
	cmd := exec.Command(bin, args...)

	logPath := filepath.Join(t.TempDir(), "mcmcd.log")
	logFile, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = logFile
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
		logFile.Close()
		if t.Failed() {
			saveArtifact(t, logPath)
			saveArtifact(t, spool)
		}
	})

	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if strings.Contains(sc.Text(), "listening on ") {
				lines <- sc.Text()
				break
			}
		}
		close(lines)
	}()
	select {
	case line, ok := <-lines:
		if !ok {
			t.Fatalf("daemon exited before its readiness line (log: %s)", logPath)
		}
		url := strings.TrimSpace(line[strings.Index(line, "http://"):])
		c, err := client.New(url)
		if err != nil {
			t.Fatal(err)
		}
		return &daemon{
			cmd: cmd, url: url, addr: strings.TrimPrefix(url, "http://"),
			spool: spool, logPath: logPath, c: c,
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not become ready")
		return nil
	}
}

// kill sends sig and waits for the process to exit.
func (d *daemon) kill(t *testing.T, sig syscall.Signal) {
	t.Helper()
	if err := d.cmd.Process.Signal(sig); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { d.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("daemon did not exit on %v", sig)
	}
}

func (d *daemon) submit(t *testing.T, scene api.SceneSpec, opts api.OptionsSpec) *api.JobStatus {
	t.Helper()
	st, err := d.c.Submit(context.Background(), api.JobSpec{Scene: &scene, Options: opts})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	return st
}

func (d *daemon) getJob(t *testing.T, id string) *api.JobStatus {
	t.Helper()
	st, err := d.c.Job(context.Background(), id)
	if err != nil {
		t.Fatalf("GET %s: %v", id, err)
	}
	return st
}

// waitState polls until the job reaches want (or any terminal state,
// which fails unless terminal is what was asked for).
func (d *daemon) waitState(t *testing.T, id string, want api.JobState) *api.JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := d.getJob(t, id)
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached terminal %q (error %q) while waiting for %q", id, st.State, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %q", id, want)
	return nil
}

func (d *daemon) waitDone(t *testing.T, id string, timeout time.Duration) *api.JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st := d.getJob(t, id)
		if st.State.Terminal() {
			return st
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish within %v", id, timeout)
	return nil
}

// checkpointPath is the job's spooled checkpoint file.
func (d *daemon) checkpointPath(id string) string {
	return filepath.Join(d.spool, id, api.SpoolCheckpointFile)
}

// waitCheckpoint blocks until the job has spooled at least one
// checkpoint — the precondition for a resumable kill.
func (d *daemon) waitCheckpoint(t *testing.T, id string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, err := os.Stat(d.checkpointPath(id)); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared before the kill window closed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// ---- failure artifacts ---------------------------------------------

var artifactName = regexp.MustCompile(`[^A-Za-z0-9._-]+`)

// saveArtifact copies a file or directory tree under
// $E2E_ARTIFACTS/<test-name>/ for offline triage. A no-op unless the
// env var is set (CI sets it; locally the test log usually suffices).
func saveArtifact(t *testing.T, path string) {
	root := os.Getenv("E2E_ARTIFACTS")
	if root == "" {
		return
	}
	dest := filepath.Join(root, artifactName.ReplaceAllString(t.Name(), "_"))
	if err := copyTree(path, filepath.Join(dest, filepath.Base(path))); err != nil {
		t.Logf("saving artifact %s: %v", path, err)
	} else {
		t.Logf("artifacts saved under %s", dest)
	}
}

func copyTree(src, dest string) error {
	return filepath.Walk(src, func(p string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, p)
		if err != nil {
			return err
		}
		target := filepath.Join(dest, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		if err := os.MkdirAll(filepath.Dir(target), 0o755); err != nil {
			return err
		}
		in, err := os.Open(p)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
}

// ---- shared workload + reference results ---------------------------

// matrixScene is the matrix's shared synthetic workload; detections on
// it are compared bit-for-bit against direct library calls.
var matrixScene = api.SceneSpec{W: 96, H: 96, Count: 6, MeanRadius: 7, Noise: 0.05, Seed: 11}

func matrixOptions(iters int, seed uint64) api.OptionsSpec {
	return api.OptionsSpec{Strategy: "sequential", MeanRadius: matrixScene.MeanRadius, Iterations: iters, Seed: seed}
}

// directView runs the same detection through the library and returns
// its normalized wire form — the bit-identical reference every service
// result is held to.
func directView(t *testing.T, iters int, seed uint64) api.ResultView {
	t.Helper()
	pix, _ := parmcmc.GenerateScene(parmcmc.SceneSpec{
		W: matrixScene.W, H: matrixScene.H, Count: matrixScene.Count,
		MeanRadius: matrixScene.MeanRadius, Noise: matrixScene.Noise, Seed: matrixScene.Seed,
	})
	res, err := parmcmc.Detect(pix, matrixScene.W, matrixScene.H, parmcmc.Options{
		Strategy: parmcmc.Sequential, MeanRadius: matrixScene.MeanRadius,
		Iterations: iters, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return normalize(api.NewResultView(res))
}

// directViewAsync computes directView concurrently with the daemon run.
func directViewAsync(t *testing.T, iters int, seed uint64) func() api.ResultView {
	ch := make(chan api.ResultView, 1)
	go func() {
		pix, _ := parmcmc.GenerateScene(parmcmc.SceneSpec{
			W: matrixScene.W, H: matrixScene.H, Count: matrixScene.Count,
			MeanRadius: matrixScene.MeanRadius, Noise: matrixScene.Noise, Seed: matrixScene.Seed,
		})
		res, err := parmcmc.Detect(pix, matrixScene.W, matrixScene.H, parmcmc.Options{
			Strategy: parmcmc.Sequential, MeanRadius: matrixScene.MeanRadius,
			Iterations: iters, Seed: seed,
		})
		if err != nil {
			ch <- api.ResultView{}
			return
		}
		ch <- normalize(api.NewResultView(res))
	}()
	return func() api.ResultView {
		v := <-ch
		if v.Strategy == "" {
			t.Fatal("reference detection failed")
		}
		return v
	}
}

func normalize(v api.ResultView) api.ResultView {
	v.ElapsedSeconds = 0
	for i := range v.Regions {
		v.Regions[i].Seconds = 0
	}
	return v
}

// doneResult extracts and normalizes a done job's result.
func doneResult(t *testing.T, st *api.JobStatus) api.ResultView {
	t.Helper()
	if st.State != api.StateDone {
		t.Fatalf("job %s state %q (error %q)", st.ID, st.State, st.Error)
	}
	res, err := st.ResultView()
	if err != nil {
		t.Fatal(err)
	}
	return normalize(*res)
}

// ---- stream watcher ------------------------------------------------

// watchResult is what a background SSE watcher saw: the terminal
// status, every delivered progress iteration, how many scratch-restart
// snapshots arrived, and any ordering violations.
type watchResult struct {
	final      *api.JobStatus
	err        error
	iters      []int64
	restarts   int
	violations []string
}

// watchJob attaches a reconnecting SSE watcher to the job and verifies
// the client-facing ordering contract as events arrive: delivered
// progress advances strictly, EXCEPT immediately after a state
// snapshot with Restarted set (a scratch restart), where the watermark
// legitimately rewinds. The returned channel yields exactly one result
// when the stream ends.
func watchJob(t *testing.T, url, id string, retries int, backoff time.Duration) <-chan watchResult {
	t.Helper()
	w, err := client.New(url, client.WithRetry(retries, backoff))
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan watchResult, 1)
	go func() {
		var res watchResult
		var last int64
		haveLast := false
		res.final, res.err = w.Wait(context.Background(), id, func(ev *client.Event) {
			if ev.Status != nil && ev.Status.Restarted && !ev.Status.State.Terminal() {
				res.restarts++
				haveLast = false // the run started over; the watermark rewound
			}
			if ev.Progress != nil {
				if haveLast && ev.Progress.Iter <= last {
					res.violations = append(res.violations, fmt.Sprintf(
						"progress went %d -> %d", last, ev.Progress.Iter))
				}
				last, haveLast = ev.Progress.Iter, true
				res.iters = append(res.iters, ev.Progress.Iter)
			}
		})
		ch <- res
	}()
	return ch
}

// mustWatch drains a watcher channel, failing the test on stream
// errors or ordering violations.
func mustWatch(t *testing.T, ch <-chan watchResult, timeout time.Duration) watchResult {
	t.Helper()
	select {
	case w := <-ch:
		if w.err != nil {
			t.Fatalf("watcher: %v", w.err)
		}
		if len(w.violations) > 0 {
			t.Fatalf("stream ordering violations:\n%s", strings.Join(w.violations, "\n"))
		}
		return w
	case <-time.After(timeout):
		t.Fatal("watcher did not finish")
		return watchResult{}
	}
}
