package e2e

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/pkg/api"
	"repro/pkg/parmcmc"
)

var checkpointCases = []e2eCase{
	{
		ID:       "C00201",
		Title:    "Committed v2 golden checkpoint still resumes bit-identically",
		Priority: 1,
		Smoke:    true,
		Run:      caseGoldenV2Resume,
	},
	{
		ID:       "C00202",
		Title:    "v1 checkpoint in the spool triggers a loud scratch restart",
		Priority: 1,
		Smoke:    false,
		Run:      caseV1CheckpointUpgrade,
	},
}

// goldenCheckpointDir holds the committed checkpoint fixtures; they are
// generated (and regenerated with -update) by pkg/parmcmc's compat
// tests, whose goldenScene/goldenOptions these constants must mirror.
const goldenCheckpointDir = "../../pkg/parmcmc/testdata"

var goldenScene = parmcmc.SceneSpec{W: 96, H: 96, Count: 5, MeanRadius: 7, Noise: 0.05, Seed: 3}

func goldenOptions() parmcmc.Options {
	return parmcmc.Options{Strategy: parmcmc.Sequential, MeanRadius: 7, Iterations: 16000, Seed: 11}
}

// C00201: the cross-release durability contract. A checkpoint written
// by the CURRENT format (the committed golden fixture stands in for
// "persisted by an earlier deploy of this version") must still decode
// and resume to the bit-identical result. This is the case that fails
// first when someone changes the checkpoint wire shape without bumping
// the version.
func caseGoldenV2Resume(t *testing.T) {
	blob, err := os.ReadFile(filepath.Join(goldenCheckpointDir, "checkpoint_v2.golden"))
	if err != nil {
		t.Fatalf("reading golden v2 checkpoint: %v", err)
	}
	var cp parmcmc.Checkpoint
	if err := cp.UnmarshalBinary(blob); err != nil {
		t.Fatalf("committed v2 checkpoint no longer decodes: %v", err)
	}

	pix, _ := parmcmc.GenerateScene(goldenScene)
	baseline, err := parmcmc.Detect(pix, goldenScene.W, goldenScene.H, goldenOptions())
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := parmcmc.DetectResume(context.Background(), pix, goldenScene.W, goldenScene.H, parmcmc.Options{}, &cp)
	if err != nil {
		t.Fatalf("committed v2 checkpoint no longer resumes: %v", err)
	}
	got, want := normalize(api.NewResultView(resumed)), normalize(api.NewResultView(baseline))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("golden-checkpoint resume differs from uninterrupted run\ngot  %+v\nwant %+v", got, want)
	}
}

// C00202: the upgrade path. A daemon restarted over a spool holding a
// v1-era checkpoint must refuse the blob (v1 payloads would silently
// decode wrong) and restart the job from scratch, marked Restarted,
// still landing the exact result. The v1 fixture must also keep
// failing direct decodes with the version-specific error.
func caseV1CheckpointUpgrade(t *testing.T) {
	v1, err := os.ReadFile(filepath.Join(goldenCheckpointDir, "checkpoint_v1.golden"))
	if err != nil {
		t.Fatalf("reading golden v1 checkpoint: %v", err)
	}
	var cp parmcmc.Checkpoint
	if derr := cp.UnmarshalBinary(v1); derr == nil || !strings.Contains(derr.Error(), "unsupported checkpoint version 1") {
		t.Fatalf("v1 checkpoint not rejected loudly: %v", derr)
	}

	const iters, seed = 400_000, 88
	want := directViewAsync(t, iters, seed)

	// Run a real job far enough to be mid-flight, kill the daemon, then
	// plant the v1 blob as its checkpoint — exactly what a spool looks
	// like after a v1->v2 daemon upgrade mid-job.
	d := startDaemon(t, t.TempDir(), "127.0.0.1:0", "-job-slots", "1", "-checkpoint-every", "2000000000")
	st := d.submit(t, matrixScene, matrixOptions(iters, seed))
	d.waitState(t, st.ID, api.StateRunning)
	d.kill(t, syscall.SIGKILL)
	if err := os.WriteFile(d.checkpointPath(st.ID), v1, 0o644); err != nil {
		t.Fatal(err)
	}

	d2 := restartDaemon(t, d, "-job-slots", "1", "-checkpoint-every", "2000000000")
	final := d2.waitDone(t, st.ID, 180*time.Second)
	if !final.Restarted {
		t.Fatal("v1-checkpoint recovery not marked Restarted")
	}
	got := doneResult(t, final)
	if w := want(); !reflect.DeepEqual(got, w) {
		t.Fatalf("post-upgrade scratch restart produced a different result\ngot  %+v\nwant %+v", got, w)
	}
}
