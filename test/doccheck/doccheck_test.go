// Package doccheck is the docs drift gate: it verifies that the code
// anchors in the hand-written documentation — repo paths in backticks,
// `pkg.Symbol` references, and relative markdown links — actually
// exist in the tree. `make docs-check` (and CI) runs exactly this
// package, so renaming a package, deleting a file or moving a doc
// breaks the build instead of silently rotting the docs.
package doccheck

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const root = "../.." // repo root, from test/doccheck

// checkedDocs are the hand-written documents under the gate. The
// generated cmdref pages are covered by cmdref-check instead.
var checkedDocs = []string{
	"README.md",
	"docs/architecture.md",
	"docs/operations.md",
	"test/doc/cases.md",
}

// pathSpan matches a backticked span that claims to be a repo path.
var pathSpan = regexp.MustCompile(`^(pkg|cmd|internal|docs|test|\.github)/[A-Za-z0-9_./*-]+$`)

// symbolSpan matches a backticked `pkg.Exported` reference.
var symbolSpan = regexp.MustCompile(`^([a-z][a-z0-9]*)\.([A-Z][A-Za-z0-9_]*)$`)

var codeSpan = regexp.MustCompile("`([^`\n]+)`")

// mdLink matches a markdown link target (the part in parentheses,
// stripped of any #fragment).
var mdLink = regexp.MustCompile(`\]\(([^)#\s]+)(?:#[^)]*)?\)`)

// problems scans one document's content and reports every broken
// anchor. docDir resolves relative markdown links; symbols is the
// package→exported-identifier index of the repo.
func problems(content, docDir string, symbols map[string]map[string]bool) []string {
	var bad []string
	for _, m := range codeSpan.FindAllStringSubmatch(content, -1) {
		span := strings.TrimSuffix(m[1], "/")
		switch {
		case pathSpan.MatchString(span):
			if strings.Contains(span, "*") {
				if matches, err := filepath.Glob(filepath.Join(root, span)); err != nil || len(matches) == 0 {
					bad = append(bad, "path pattern `"+m[1]+"` matches nothing in the repo")
				}
				continue
			}
			if _, err := os.Stat(filepath.Join(root, span)); err != nil {
				// Dir-qualified symbol (`pkg/service.Manager`): the
				// directory must exist and its package export the name.
				if dir, sym, ok := strings.Cut(span, "."); ok && symbolSpan.MatchString(filepath.Base(dir)+"."+sym) {
					if _, derr := os.Stat(filepath.Join(root, dir)); derr == nil && symbols[filepath.Base(dir)][sym] {
						continue
					}
					bad = append(bad, "symbol `"+span+"` does not resolve (directory or export missing)")
					continue
				}
				bad = append(bad, "path `"+m[1]+"` does not exist in the repo")
			}
		case symbolSpan.MatchString(span):
			sm := symbolSpan.FindStringSubmatch(span)
			exported, known := symbols[sm[1]]
			if !known {
				continue // not one of our packages (stdlib, prose)
			}
			if !exported[sm[2]] {
				bad = append(bad, "symbol `"+span+"` is not exported by package "+sm[1])
			}
		}
	}
	for _, m := range mdLink.FindAllStringSubmatch(content, -1) {
		target := m[1]
		if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
			continue
		}
		// Targets that resolve outside the repo (GitHub-site-relative
		// badge links like ../../actions/...) cannot be verified here.
		resolved := filepath.Clean(filepath.Join(docDir, target))
		if rel, err := filepath.Rel(root, resolved); err != nil || strings.HasPrefix(rel, "..") {
			continue
		}
		if _, err := os.Stat(filepath.Join(docDir, target)); err != nil {
			bad = append(bad, "link target "+target+" does not exist")
		}
	}
	return bad
}

// symbolIndex parses every Go package in the repo and maps package
// name -> set of exported top-level identifiers (types, funcs, consts,
// vars). Same-named packages in different directories merge.
func symbolIndex(t *testing.T) map[string]map[string]bool {
	t.Helper()
	index := make(map[string]map[string]bool)
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if name := d.Name(); name == "testdata" || strings.HasPrefix(name, ".") && path != root {
			return fs.SkipDir
		}
		pkgs, err := parser.ParseDir(fset, path, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, 0)
		if err != nil {
			return nil // not a Go dir (or doesn't parse); other gates catch that
		}
		for name, pkg := range pkgs {
			if name == "main" {
				continue
			}
			set := index[name]
			if set == nil {
				set = make(map[string]bool)
				index[name] = set
			}
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					switch d := decl.(type) {
					case *ast.FuncDecl:
						if d.Recv == nil && d.Name.IsExported() {
							set[d.Name.Name] = true
						}
					case *ast.GenDecl:
						for _, spec := range d.Specs {
							switch s := spec.(type) {
							case *ast.TypeSpec:
								if s.Name.IsExported() {
									set[s.Name.Name] = true
								}
							case *ast.ValueSpec:
								for _, n := range s.Names {
									if n.IsExported() {
										set[n.Name] = true
									}
								}
							}
						}
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(index) == 0 {
		t.Fatal("symbol index is empty: doccheck is not finding the repo")
	}
	return index
}

// TestDocAnchorsResolve is the gate: every checked document's code
// anchors must resolve against the current tree.
func TestDocAnchorsResolve(t *testing.T) {
	symbols := symbolIndex(t)
	for _, doc := range checkedDocs {
		doc := doc
		t.Run(doc, func(t *testing.T) {
			blob, err := os.ReadFile(filepath.Join(root, doc))
			if err != nil {
				t.Fatalf("checked doc missing: %v", err)
			}
			for _, p := range problems(string(blob), filepath.Dir(filepath.Join(root, doc)), symbols) {
				t.Error(p)
			}
		})
	}
}

// TestGateCatchesRot proves the gate actually fires: fabricated docs
// with a dead path, a dead symbol and a dead link must all be flagged,
// and their healthy counterparts must not.
func TestGateCatchesRot(t *testing.T) {
	symbols := symbolIndex(t)
	rotten := "see `pkg/service/teleporter.go` and `service.FrobnicateQueue`, " +
		"also [the plan](no/such/doc.md)"
	got := problems(rotten, filepath.Join(root, "docs"), symbols)
	if len(got) != 3 {
		t.Fatalf("rotten doc produced %d problems, want 3:\n%s", len(got), strings.Join(got, "\n"))
	}
	healthy := "see `pkg/service/remote.go` and `service.NewExternal`, " +
		"also [the architecture](architecture.md) and stdlib `http.Client` (unindexed, skipped)"
	if got := problems(healthy, filepath.Join(root, "docs"), symbols); len(got) != 0 {
		t.Fatalf("healthy doc flagged:\n%s", strings.Join(got, "\n"))
	}
}
