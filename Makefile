# Task entry points — CI runs exactly these targets (see
# .github/workflows/ci.yml), so a green `make ci` locally means a green
# pipeline.

GO ?= go

.PHONY: all build fmt fmt-check vet test test-short race ci cover-service bench bench-json bench-check experiments-quick experiments

all: build

build:
	$(GO) build ./...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Fast failure: the short suite skips the long chain runs.
test-short:
	$(GO) test -short ./...

test:
	$(GO) test ./...

# Full suite under the race detector (the Runner tests exercise >1
# worker, so this is the concurrency gate).
race:
	$(GO) test -race ./...

ci: fmt-check vet build test-short race cover-service

# Coverage gate for the service layer: the black-box suite must keep
# pkg/service at or above the floor (the daemon is the layer most
# likely to grow untested handler branches). The profile lands in the
# workspace (git-ignored), so concurrent runs in different checkouts
# cannot clobber each other.
SERVICE_COVER_FLOOR := 80.0
SERVICE_COVER_PROFILE := service.cov
cover-service:
	$(GO) test -coverprofile=$(SERVICE_COVER_PROFILE) -covermode=atomic ./pkg/service
	@total=$$($(GO) tool cover -func=$(SERVICE_COVER_PROFILE) | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	echo "pkg/service coverage: $$total% (floor $(SERVICE_COVER_FLOOR)%)"; \
	awk -v t="$$total" -v floor="$(SERVICE_COVER_FLOOR)" \
		'BEGIN { if (t+0 < floor+0) { print "pkg/service coverage below floor"; exit 1 } }'

# Benchmark smoke run: every benchmark in the module once, with
# allocation counts. CI runs this so benchmarks can never bit-rot.
bench:
	$(GO) test -bench=. -benchtime=1x -benchmem -run=^$$ ./...

# Machine-readable perf snapshot: writes BENCH_<date>.json at the repo
# root (see cmd/benchjson). Compare against BENCH_baseline.json.
bench-json:
	$(GO) run ./cmd/benchjson -benchtime 1x

# Bench regression gate: re-measure the kernel microbenchmarks and fail
# on a >15% ns/op regression or any allocs/op regression vs the
# committed BENCH_baseline.json (see cmd/benchjson -compare).
bench-check:
	$(GO) run ./cmd/benchjson \
		-bench 'BenchmarkLikDelta|BenchmarkCoverMove|BenchmarkSequentialIteration|BenchmarkMoveKinds' \
		-benchtime 0.3s -o /tmp/BENCH_check.json \
		-compare BENCH_baseline.json -max-ns-regress 0.15

# Reproduce every paper figure through the Runner (quick ≈ seconds,
# full ≈ minutes).
experiments-quick:
	$(GO) run ./cmd/experiments -quick

experiments:
	$(GO) run ./cmd/experiments
