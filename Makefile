# Task entry points — CI runs exactly these targets (see
# .github/workflows/ci.yml), so a green `make ci` locally means a green
# pipeline.

GO ?= go

.PHONY: all build fmt fmt-check vet lint test test-short race ci cover-service cmdref cmdref-check docs-check bench bench-json bench-check bench-scaling fuzz-smoke e2e e2e-smoke e2e-case experiments-quick experiments

all: build

build:
	$(GO) build ./...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Static analysis + known-vulnerability scan, mirroring the CI lint job
# (same pinned versions, so local `make lint` reproduces CI exactly).
# The tools are installed on demand into $(go env GOPATH)/bin.
STATICCHECK_VERSION := 2025.1.1
GOVULNCHECK_VERSION := v1.1.4
lint:
	@command -v staticcheck >/dev/null 2>&1 || 		$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	@command -v govulncheck >/dev/null 2>&1 || 		$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)
	staticcheck ./...
	govulncheck ./...

# Fast failure: the short suite skips the long chain runs.
test-short:
	$(GO) test -short ./...

test:
	$(GO) test ./...

# Full suite under the race detector (the Runner tests exercise >1
# worker, so this is the concurrency gate).
race:
	$(GO) test -race ./...

ci: fmt-check vet build test-short race cover-service cmdref-check docs-check

# Coverage gate for the API stack: the black-box suites must keep the
# contract (pkg/api), the client (pkg/client) and the daemon
# (pkg/service) at or above the floor — these are the layers most
# likely to grow untested handler/decoder branches. The profile lands
# in the workspace (git-ignored), so concurrent runs in different
# checkouts cannot clobber each other.
SERVICE_COVER_FLOOR := 80.0
SERVICE_COVER_PROFILE := service.cov
SERVICE_COVER_PKGS := ./pkg/api,./pkg/client,./pkg/service,./pkg/service/coordinator,./pkg/service/worker
cover-service:
	$(GO) test -coverprofile=$(SERVICE_COVER_PROFILE) -covermode=atomic \
		-coverpkg=$(SERVICE_COVER_PKGS) ./pkg/api ./pkg/client ./pkg/service ./pkg/service/coordinator ./pkg/service/worker
	@total=$$($(GO) tool cover -func=$(SERVICE_COVER_PROFILE) | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	echo "API stack coverage: $$total% (floor $(SERVICE_COVER_FLOOR)%)"; \
	awk -v t="$$total" -v floor="$(SERVICE_COVER_FLOOR)" \
		'BEGIN { if (t+0 < floor+0) { print "API stack coverage below floor"; exit 1 } }'

# The mcmcctl command reference under docs/cmdref/ is generated from
# the live command tree; cmdref-check regenerates it and fails on any
# diff, so the committed docs can never drift from the CLI.
cmdref:
	$(GO) run ./cmd/mcmcctl cmdref -o docs/cmdref

cmdref-check:
	@tmp=$$(mktemp -d); \
	$(GO) run ./cmd/mcmcctl cmdref -o $$tmp || exit 1; \
	if ! diff -ru docs/cmdref $$tmp; then \
		rm -rf $$tmp; \
		echo "docs/cmdref is stale: run 'make cmdref' and commit the result"; exit 1; \
	fi; \
	rm -rf $$tmp

# The hand-written docs (README, docs/architecture.md,
# docs/operations.md, test/doc/cases.md) are gated against rot: every
# backticked repo path, pkg.Symbol anchor and relative markdown link
# must resolve against the current tree (see test/doccheck).
docs-check:
	$(GO) test ./test/doccheck -count=1

# Benchmark smoke run: every benchmark in the module once, with
# allocation counts. CI runs this so benchmarks can never bit-rot.
bench:
	$(GO) test -bench=. -benchtime=1x -benchmem -run=^$$ ./...

# Machine-readable perf snapshot: writes BENCH_<date>.json at the repo
# root (see cmd/benchjson). Compare against BENCH_baseline.json.
bench-json:
	$(GO) run ./cmd/benchjson -benchtime 1x

# Bench regression gate: re-measure the kernel microbenchmarks and fail
# on a >15% ns/op regression or any allocs/op regression vs the
# committed BENCH_baseline.json (see cmd/benchjson -compare; the
# comparison is skipped with a warning when the baseline was recorded
# on a host with a different CPU count). The scanline span kernels are
# additionally required to be allocation-free in absolute terms
# (-zero-alloc), not merely no worse than the baseline — the /naive
# reference variants are exempt, they exist for correctness checks.
bench-check:
	$(GO) run ./cmd/benchjson \
		-bench 'BenchmarkLikDelta|BenchmarkCoverMove|BenchmarkSequentialIteration|BenchmarkMoveKinds' \
		-benchtime 0.3s -count 3 -o /tmp/BENCH_check.json \
		-zero-alloc '(BenchmarkLikDelta|BenchmarkCoverMove).*/scanline' \
		-compare BENCH_baseline.json -max-ns-regress 0.15

# Throughput-per-core scaling curve (see BenchmarkThroughputScaling and
# BenchmarkSamplerScaling): each benchmark runs once per GOMAXPROCS
# width and the report gains a scaling section — measured rows (ops/sec,
# speedup, parallel efficiency per core count) plus simulated rows from
# the sampler's simulated parallel machine, which are host-independent.
# CI uploads BENCH_scaling.json as a build artifact so the curve is
# inspectable per run. Widths beyond the host's core count are still
# measured — efficiency honestly collapses there (benchjson marks those
# sections hardware_saturated).
#
# The -scaling-gate floors fail the run when the speculative sampler's
# simulated end-to-end speedup drops below 1.4x at 2 procs / 1.6x at 4,
# or when measured thread-throughput scaling falls below 1.1x at 2 procs
# — the measured gate skips (loudly) on hosts with fewer cores.
SCALING_CPUS := 1,2,4
bench-scaling:
	$(GO) run ./cmd/benchjson \
		-bench 'BenchmarkThroughputScaling|BenchmarkSamplerScaling' -pkg . \
		-cpu $(SCALING_CPUS) -benchtime 0.3s -count 2 -o BENCH_scaling.json \
		-scaling-gate 'BenchmarkSamplerScaling/.*/width=adaptive@2:1.4' \
		-scaling-gate 'BenchmarkSamplerScaling/.*/width=adaptive@4:1.6' \
		-scaling-gate 'BenchmarkThroughputScaling@2:1.1:measured'

# Nightly fuzz smoke: run every Fuzz* target for FUZZ_TIME each (the
# decode fuzzers, the PGM dimension guards, and the disc+ellipse
# likelihood differentials). Any crasher fails the run and is written
# under the package's testdata/fuzz/ for triage.
FUZZ_TIME := 30s
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzDecodeSubmit -fuzztime=$(FUZZ_TIME) ./pkg/service
	$(GO) test -run=^$$ -fuzz=FuzzPGMDims -fuzztime=$(FUZZ_TIME) ./pkg/service
	$(GO) test -run=^$$ -fuzz=FuzzLikDeltaDifferential -fuzztime=$(FUZZ_TIME) ./internal/model

# E2E case matrix over the real binaries (catalog: test/doc/cases.md).
# e2e-smoke runs the smoke-tagged subset (what PR CI gates on);
# e2e runs the full matrix (what nightly runs); e2e-case runs one
# cataloged case by ID. Set E2E_ARTIFACTS=DIR to collect spool dirs and
# daemon logs from failing cases.
e2e-smoke:
	$(GO) test ./test/e2e -run 'TestCases|TestCatalogMatchesDoc' -count=1 -v

e2e:
	E2E_MATRIX=full $(GO) test ./test/e2e -run 'TestCases|TestCatalogMatchesDoc' -count=1 -v

e2e-case:
	@test -n "$(CASE)" || { echo "usage: make e2e-case CASE=C00103"; exit 1; }
	E2E_MATRIX=full $(GO) test ./test/e2e -run 'TestCases/$(CASE)$$' -count=1 -v

# Reproduce every paper figure through the Runner (quick ≈ seconds,
# full ≈ minutes).
experiments-quick:
	$(GO) run ./cmd/experiments -quick

experiments:
	$(GO) run ./cmd/experiments
