// Repository-root benchmarks: one per paper table/figure (quick-mode
// workloads; run `go run ./cmd/experiments` for the full-scale versions
// recorded in EXPERIMENTS.md), plus micro-benchmarks of the engines and
// ablations of the design choices DESIGN.md calls out.
package repro

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/geom"
	"repro/internal/imaging"
	"repro/internal/mcmc"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/spec"
	"repro/internal/trace"
	"repro/pkg/parmcmc"
)

// runExperiment executes a registered experiment once per benchmark
// iteration in quick mode.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	runner := experiments.Lookup(id)
	if runner == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	opts := experiments.DefaultOptions()
	opts.Quick = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner(context.Background(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1Theory regenerates fig. 1 (eq. 2 curves).
func BenchmarkFig1Theory(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFig2PhaseSweep regenerates fig. 2 (runtime vs global phase
// length, 4 partitions).
func BenchmarkFig2PhaseSweep(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkArchProfiles regenerates the §VII architecture comparison.
func BenchmarkArchProfiles(b *testing.B) { runExperiment(b, "arch") }

// BenchmarkTable1Intelligent regenerates Table I (intelligent
// partitioning of the bead image).
func BenchmarkTable1Intelligent(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFig4Blind regenerates the fig. 4 blind-partitioning
// experiment.
func BenchmarkFig4Blind(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkSpeculativeModel regenerates the eqs. 3–4 speculative-moves
// comparison.
func BenchmarkSpeculativeModel(b *testing.B) { runExperiment(b, "spec") }

// BenchmarkAnomaly regenerates the §II boundary-anomaly comparison.
func BenchmarkAnomaly(b *testing.B) { runExperiment(b, "anomaly") }

// BenchmarkMC3 regenerates the §IV (MC)³ comparison.
func BenchmarkMC3(b *testing.B) { runExperiment(b, "mc3") }

// ---------------------------------------------------------------------------
// Engine micro-benchmarks and ablations.

func benchState(b *testing.B, w, h, count int) *model.State {
	return benchStateKind(b, w, h, count, geom.KindDisc)
}

func benchStateKind(b *testing.B, w, h, count int, kind geom.ShapeKind) *model.State {
	b.Helper()
	scene := imaging.Synthesize(imaging.SceneSpec{
		W: w, H: h, Count: count, MeanRadius: 10, RadiusStdDev: 1.2,
		Noise: 0.06, MinSeparation: 1.05, Shape: kind,
	}, rng.New(2010))
	p := model.DefaultParams(float64(count), 10)
	p.Shape = kind
	s, err := model.NewState(scene.Image, p)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkSequentialIteration measures the plain RJ-MCMC iteration cost
// on the §VII workload scale (τ in eqs. 2–4).
func BenchmarkSequentialIteration(b *testing.B) {
	s := benchState(b, 512, 512, 40)
	e := mcmc.MustNew(s, rng.New(1), mcmc.DefaultWeights(), mcmc.DefaultStepSizes(10))
	e.RunN(20000) // reach equilibrium so costs are steady-state
	b.ReportAllocs()
	b.ResetTimer()
	e.RunN(b.N)
}

// BenchmarkMoveKinds measures each proposal kind separately; the paper's
// theory assumes τ_g ≈ τ_l, which this verifies. Each shape family
// benches its own move set (axis-scale/rotate exist only for ellipses;
// split/merge only for discs), on an engine over a matching scene.
func BenchmarkMoveKinds(b *testing.B) {
	run := func(name string, kind geom.ShapeKind, moves []mcmc.Move) {
		s := benchStateKind(b, 512, 512, 40, kind)
		e := mcmc.MustNew(s, rng.New(1), mcmc.DefaultWeightsFor(kind), mcmc.DefaultStepSizes(10))
		e.RunN(20000)
		for _, m := range moves {
			m := m
			b.Run(name+m.String(), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					e.Decide(e.Propose(m))
				}
			})
		}
	}
	run("", geom.KindDisc, []mcmc.Move{
		mcmc.Birth, mcmc.Death, mcmc.Split, mcmc.Merge,
		mcmc.Replace, mcmc.Shift, mcmc.Resize,
	})
	run("ellipse/", geom.KindEllipse, []mcmc.Move{
		mcmc.Birth, mcmc.Death, mcmc.Replace, mcmc.Shift,
		mcmc.Resize, mcmc.AxisScale, mcmc.Rotate,
	})
}

// BenchmarkThroughputScaling measures aggregate sampler throughput as
// GOMAXPROCS grows: each worker goroutine owns an independent 128²
// chain (the embarrassingly-parallel regime of §IX's multi-image
// workload), so ideal scaling doubles ops/sec per core doubling. Run it
// through cmd/benchjson -cpu 1,2,... to turn the per-width results into
// a throughput-per-core curve with speedup and parallel-efficiency
// columns; CI records the curve as a build artifact (make
// bench-scaling).
//
// The curve is only meaningful up to the host's physical core count: at
// GOMAXPROCS above NumCPU the goroutines time-slice one core and the
// measured "speedup" pins at ~1.0x — that is the host saturating, not a
// scaling defect (the flat 1.01x curve recorded by early BENCH_scaling
// artifacts came from exactly this: a 1-core container). benchjson
// marks such sections saturated, and measured scaling gates skip —
// loudly — when the host has fewer cores than the gated point. The
// committed BENCH_scaling.json therefore carries, alongside these
// measured rows, simulated rows from BenchmarkSamplerScaling, which are
// host-independent.
func BenchmarkThroughputScaling(b *testing.B) {
	procs := runtime.GOMAXPROCS(0)
	engines := make(chan *mcmc.Engine, procs)
	for i := 0; i < procs; i++ {
		s := benchState(b, 128, 128, 8)
		e := mcmc.MustNew(s, rng.New(uint64(1000+i)), mcmc.DefaultWeights(), mcmc.DefaultStepSizes(10))
		e.RunN(5000) // steady state
		engines <- e
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		e := <-engines
		defer func() { engines <- e }()
		for pb.Next() {
			e.RunN(1)
		}
	})
}

// BenchmarkSamplerScaling measures the end-to-end speculative sampler
// on the paper's two §VI workload shapes — an intelligent-partitioning
// bead image (Table I) and a uniform blind-partitioning field (fig. 4)
// — under the simulated parallel machine (DESIGN.md §7): every local
// cell and speculative lane is timed individually and scheduled onto
// GOMAXPROCS simulated workers by LPT, so the reported sim-speedup is
// the wall-clock ratio a real GOMAXPROCS-core host would see, measured
// accurately even on a 1-core runner. Run through cmd/benchjson
// -cpu 1,2,4 it yields the committed scaling curve's simulated rows;
// the spec-* metrics additionally record the executor's realized eq. 3
// iterations-per-batch and its (fixed or adaptive) width, so the
// adaptive controller can be compared against every fixed width on the
// same workload.
func BenchmarkSamplerScaling(b *testing.B) {
	workloads := []struct {
		name string
		spec parmcmc.SceneSpec
	}{
		{"table1", parmcmc.SceneSpec{W: 512, H: 384, Count: 48, MeanRadius: 9, Noise: 0.07, Clusters: 6, Seed: 2010}},
		{"fig4", parmcmc.SceneSpec{W: 512, H: 512, Count: 40, MeanRadius: 10, Noise: 0.06, Seed: 2011}},
	}
	widthName := func(w int) string {
		if w == 0 {
			return "adaptive"
		}
		return itoa(w)
	}
	for _, wl := range workloads {
		wl := wl
		pix, _ := parmcmc.GenerateScene(wl.spec)
		for _, width := range []int{1, 2, 4, 0} {
			width := width
			b.Run(wl.name+"/width="+widthName(width), func(b *testing.B) {
				// GOMAXPROCS must be read inside the leaf: -cpu reruns
				// leaves, not this closure's enclosing scope.
				procs := runtime.GOMAXPROCS(0)
				var res *parmcmc.Result
				for i := 0; i < b.N; i++ {
					var err error
					res, err = parmcmc.Detect(pix, wl.spec.W, wl.spec.H, parmcmc.Options{
						Strategy: parmcmc.PeriodicSpeculative, MeanRadius: wl.spec.MeanRadius,
						Iterations: 40000, Seed: 7, Workers: procs, PartitionGrid: 3,
						SpecWidth: width, SimulateParallel: true,
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				serial := res.LocalSeconds + res.SimGlobalSerialSeconds
				par := res.SimLocalSeconds + res.SimGlobalSeconds
				if par > 0 {
					b.ReportMetric(serial/par, "sim-speedup")
				}
				b.ReportMetric(float64(procs), "sim-procs")
				if res.SpecBatches > 0 {
					b.ReportMetric(res.SpecSpeedup, "spec-iters-per-batch")
					b.ReportMetric(float64(res.SpecWidth), "spec-width")
				}
			})
		}
	}
}

// BenchmarkPeriodicVsSequential is the headline ablation: the same
// 500k-iteration budget under the sequential engine and under periodic
// partitioning at several phase lengths (quick scale).
func BenchmarkPeriodicVsSequential(b *testing.B) {
	const iters = 30000
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := benchState(b, 256, 256, 20)
			e := mcmc.MustNew(s, rng.New(1), mcmc.DefaultWeights(), mcmc.DefaultStepSizes(10))
			e.RunN(iters)
		}
	})
	for _, local := range []int{150, 600, 2400} {
		local := local
		b.Run("periodic/local="+itoa(local), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := benchState(b, 256, 256, 20)
				e := mcmc.MustNew(s, rng.New(1), mcmc.DefaultWeights(), mcmc.DefaultStepSizes(10))
				pe, err := core.NewEngine(e, core.Options{
					LocalPhaseIters: local, GridXM: 256, GridYM: 256, Workers: 4,
				})
				if err != nil {
					b.Fatal(err)
				}
				pe.Run(iters)
			}
		})
	}
}

// BenchmarkSpeculativeExecutor measures speculative stepping throughput
// against plain stepping (the eq. 3 mechanism).
func BenchmarkSpeculativeExecutor(b *testing.B) {
	for _, width := range []int{1, 2, 4, 8} {
		width := width
		b.Run("width="+itoa(width), func(b *testing.B) {
			s := benchState(b, 256, 256, 20)
			e := mcmc.MustNew(s, rng.New(1), mcmc.DefaultWeights(), mcmc.DefaultStepSizes(10))
			e.RunN(10000)
			x := spec.NewExecutor(e, width, nil)
			defer x.Close()
			b.ResetTimer()
			x.RunN(b.N)
		})
	}
}

// BenchmarkLikelihoodDelta measures the core O(r²) incremental
// evaluation primitive.
func BenchmarkLikelihoodDelta(b *testing.B) {
	s := benchState(b, 512, 512, 40)
	c := geom.Disc(256, 256, 10)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += model.LikDeltaAdd(s.Gain, s.GainSum, s.Cover, s.W, s.H, c)
	}
	_ = sink
}

// BenchmarkIntelligentPartitioning measures the §VIII pre-processor on
// the bead image (partition discovery only, no chains).
func BenchmarkIntelligentPartitioning(b *testing.B) {
	scene := imaging.Synthesize(imaging.SceneSpec{
		W: 512, H: 384, Count: 48, Clusters: 3, MeanRadius: 10,
		RadiusStdDev: 0.5, Noise: 0.04, MinSeparation: 1.02,
	}, rng.New(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		partition.IntelligentRegions(scene.Image, 0.5, 22, 2)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkGridSpacingAblation quantifies §VI's tradeoff: finer grids
// parallelise better (lower simulated local-phase makespan) but shrink
// the modifiable-feature fraction (more proposals die on the boundary
// rule). Reported metrics: invalid-proposal fraction of local moves and
// the simulated-parallel speedup of the local phases on 4 workers.
func BenchmarkGridSpacingAblation(b *testing.B) {
	for _, div := range []int{1, 2, 4} {
		div := div
		b.Run("div="+itoa(div), func(b *testing.B) {
			var invalidFrac, speedup float64
			for i := 0; i < b.N; i++ {
				s := benchState(b, 512, 512, 60)
				e := mcmc.MustNew(s, rng.New(1), mcmc.DefaultWeights(), mcmc.DefaultStepSizes(10))
				e.RunN(20000)
				tm := trace.NewPhaseTimer()
				pe, err := core.NewEngine(e, core.Options{
					LocalPhaseIters:  3000,
					GridXM:           512 / float64(div),
					GridYM:           512 / float64(div),
					Workers:          4,
					Timer:            tm,
					SimulateParallel: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				pe.Run(50000)
				serialLocal := tm.Total("local").Seconds()
				if pe.SimLocalSeconds > 0 {
					speedup = serialLocal / pe.SimLocalSeconds
				}
				prop := e.Stats.Proposed[mcmc.Shift] + e.Stats.Proposed[mcmc.Resize]
				inv := e.Stats.Invalid[mcmc.Shift] + e.Stats.Invalid[mcmc.Resize]
				if prop > 0 {
					invalidFrac = float64(inv) / float64(prop)
				}
			}
			b.ReportMetric(invalidFrac, "invalid-frac")
			b.ReportMetric(speedup, "local-speedup")
		})
	}
}

// BenchmarkLocalSpecAblation measures the eq. 4 extension: simulated
// local-phase time with and without speculative batches inside workers.
func BenchmarkLocalSpecAblation(b *testing.B) {
	for _, width := range []int{0, 2, 4, 8} {
		width := width
		b.Run("t="+itoa(width), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				s := benchState(b, 512, 512, 60)
				e := mcmc.MustNew(s, rng.New(1), mcmc.DefaultWeights(), mcmc.DefaultStepSizes(10))
				e.RunN(20000)
				pe, err := core.NewEngine(e, core.Options{
					LocalPhaseIters: 3000,
					GridXM:          256, GridYM: 256,
					Workers:          4,
					LocalSpecWidth:   width,
					SimulateParallel: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				pe.Run(30000)
				sim = pe.SimLocalSeconds
			}
			b.ReportMetric(sim*1e3, "sim-local-ms")
		})
	}
}
