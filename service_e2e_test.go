package repro

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/pkg/api"
	"repro/pkg/client"
	"repro/pkg/parmcmc"
)

// daemon is one running mcmcd process under test, plus the typed
// client every assertion goes through — the black-box harness speaks
// only the published pkg/api contract.
type daemon struct {
	cmd *exec.Cmd
	url string
	c   *client.Client
}

// startDaemon launches a freshly built mcmcd on addr (use
// "127.0.0.1:0" for an ephemeral port) and waits for its readiness
// line. The process is torn down (if still alive) when the test ends.
func startDaemon(t *testing.T, bin, addr string, extraArgs ...string) *daemon {
	t.Helper()
	args := append([]string{"-addr", addr}, extraArgs...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	// The readiness line is the contract: "mcmcd: listening on http://…".
	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if strings.Contains(sc.Text(), "listening on ") {
				lines <- sc.Text()
				break
			}
		}
		close(lines)
	}()
	select {
	case line, ok := <-lines:
		if !ok {
			t.Fatal("daemon exited before its readiness line")
		}
		i := strings.Index(line, "http://")
		url := strings.TrimSpace(line[i:])
		c, err := client.New(url)
		if err != nil {
			t.Fatal(err)
		}
		return &daemon{cmd: cmd, url: url, c: c}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not become ready")
		return nil
	}
}

func (d *daemon) submitScene(t *testing.T, scene api.SceneSpec, opts api.OptionsSpec) *api.JobStatus {
	t.Helper()
	st, err := d.c.Submit(context.Background(), api.JobSpec{Scene: &scene, Options: opts})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	return st
}

func (d *daemon) getJob(t *testing.T, id string) *api.JobStatus {
	t.Helper()
	st, err := d.c.Job(context.Background(), id)
	if err != nil {
		t.Fatalf("GET %s: %v", id, err)
	}
	return st
}

func (d *daemon) waitDone(t *testing.T, id string, timeout time.Duration) *api.JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st := d.getJob(t, id)
		if st.State.Terminal() {
			return st
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish within %v", id, timeout)
	return nil
}

// e2eResult extracts and normalizes a done job's result.
func e2eResult(t *testing.T, st *api.JobStatus) api.ResultView {
	t.Helper()
	if st.State != api.StateDone {
		t.Fatalf("job %s state %q (error %q)", st.ID, st.State, st.Error)
	}
	res, err := st.ResultView()
	if err != nil {
		t.Fatal(err)
	}
	res.ElapsedSeconds = 0
	for i := range res.Regions {
		res.Regions[i].Seconds = 0
	}
	return *res
}

// e2eScene/e2eDirect are the shared black-box workload, with the
// matching direct-library call it must be bit-identical to.
var e2eScene = api.SceneSpec{W: 96, H: 96, Count: 6, MeanRadius: 7, Noise: 0.05, Seed: 11}

func e2eDirect(t *testing.T, iters int, seed uint64) api.ResultView {
	t.Helper()
	pix, _ := parmcmc.GenerateScene(parmcmc.SceneSpec{
		W: e2eScene.W, H: e2eScene.H, Count: e2eScene.Count,
		MeanRadius: e2eScene.MeanRadius, Noise: e2eScene.Noise, Seed: e2eScene.Seed,
	})
	res, err := parmcmc.Detect(pix, e2eScene.W, e2eScene.H, parmcmc.Options{
		Strategy: parmcmc.Sequential, MeanRadius: e2eScene.MeanRadius,
		Iterations: iters, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	v := api.NewResultView(res)
	v.ElapsedSeconds = 0
	return v
}

// End-to-end integration through the typed client: submit a synthetic
// scene to a real mcmcd process, consume the SSE stream to completion,
// pin the final result bit-identical to a direct parmcmc.Detect with
// the same seed, and verify the diagnostics and telemetry surfaces.
func TestServiceE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := buildTool(t, "mcmcd")
	d := startDaemon(t, bin, "127.0.0.1:0", "-spool", t.TempDir(), "-job-slots", "2")
	ctx := context.Background()

	// The capability registry answers before any job exists.
	info, err := d.c.Version(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.API != api.Version || len(info.Strategies) == 0 || len(info.Shapes) == 0 {
		t.Fatalf("version info %+v", info)
	}

	const iters, seed = 60000, 21
	st := d.submitScene(t, e2eScene, api.OptionsSpec{
		Strategy: "sequential", MeanRadius: e2eScene.MeanRadius, Iterations: iters, Seed: seed,
	})
	if st.State != api.StatePending || st.Seed != seed {
		t.Fatalf("submitted status %+v", st)
	}

	var progressEvents int
	final, err := d.c.Wait(ctx, st.ID, func(ev *client.Event) {
		if ev.Name == "progress" {
			progressEvents++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if progressEvents == 0 {
		t.Fatal("no progress events on the SSE stream")
	}
	got := e2eResult(t, final)
	if want := e2eDirect(t, iters, seed); !reflect.DeepEqual(got, want) {
		t.Fatalf("daemon result differs from direct Detect\ngot  %+v\nwant %+v", got, want)
	}

	// Chain diagnostics: the finished job reports its convergence
	// window (12 chunks for 60k iterations) with finite R̂/ESS, plus the
	// result-level acceptance rate.
	diag, err := d.c.Diag(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if diag.Samples < 8 {
		t.Fatalf("diag window has %d samples", diag.Samples)
	}
	if math.IsNaN(float64(diag.RHat)) || math.IsNaN(float64(diag.ESS)) {
		t.Fatalf("diag R̂/ESS missing: %+v", diag)
	}
	if math.IsNaN(float64(diag.AcceptRate)) {
		t.Fatalf("done job diag without accept rate: %+v", diag)
	}

	// Health and metrics answer on the same listener; the exposition
	// parses back with valid histograms that saw this job.
	if h, err := d.c.Health(ctx); err != nil || h.Status != "ok" {
		t.Fatalf("healthz: %+v, %v", h, err)
	}
	m, err := d.c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"mcmcd_queue_wait_seconds", "mcmcd_job_duration_seconds", "mcmcd_iteration_seconds"} {
		h, ok := m.Histograms[name]
		if !ok {
			t.Fatalf("metrics missing histogram %s", name)
		}
		if h.Count == 0 {
			t.Fatalf("%s observed nothing after a completed job", name)
		}
	}
	if m.Values[`mcmcd_jobs{state="done"}`] != 1 {
		t.Fatalf("done gauge %v", m.Values)
	}

	// Typed error envelopes: unknown job, unknown route, wrong method.
	_, err = d.c.Job(ctx, "job-99999999")
	var env *api.ErrorEnvelope
	if !errors.As(err, &env) || env.Code != api.CodeNotFound || env.Status != http.StatusNotFound {
		t.Fatalf("unknown job error %v", err)
	}
	resp, err := http.Get(d.url + "/v1/bogus")
	if err != nil {
		t.Fatal(err)
	}
	assertEnvelope(t, resp, http.StatusNotFound, api.CodeNotFound)
	resp, err = http.Post(d.url+"/v1/version", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if allow := resp.Header.Get("Allow"); allow != "GET" {
		t.Fatalf("405 Allow header %q", allow)
	}
	assertEnvelope(t, resp, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed)
}

// assertEnvelope drains a response and pins the typed error contract.
func assertEnvelope(t *testing.T, resp *http.Response, status int, code string) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != status {
		t.Fatalf("status %d, want %d", resp.StatusCode, status)
	}
	var env api.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("non-envelope error body: %v", err)
	}
	if env.Code != code || env.Message == "" {
		t.Fatalf("envelope %+v, want code %q", env, code)
	}
}

// Crash durability AND client resilience in one scenario: a client SSE
// stream is attached when the daemon is SIGKILLed mid-job; the daemon
// restarts on the same address and spool; the stream must reconnect by
// itself, deduplicate the checkpoint-replayed progress, and deliver
// the terminal result — bit-identical to an uninterrupted run.
func TestServiceCrashRestartDurability(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := buildTool(t, "mcmcd")
	spool := t.TempDir()

	// The uninterrupted reference runs concurrently with the daemon.
	const iters, seed = 1_500_000, 33
	wantCh := make(chan api.ResultView, 1)
	go func() {
		pix, _ := parmcmc.GenerateScene(parmcmc.SceneSpec{
			W: e2eScene.W, H: e2eScene.H, Count: e2eScene.Count,
			MeanRadius: e2eScene.MeanRadius, Noise: e2eScene.Noise, Seed: e2eScene.Seed,
		})
		res, err := parmcmc.Detect(pix, e2eScene.W, e2eScene.H, parmcmc.Options{
			Strategy: parmcmc.Sequential, MeanRadius: e2eScene.MeanRadius,
			Iterations: iters, Seed: seed,
		})
		if err != nil {
			wantCh <- api.ResultView{}
			return
		}
		v := api.NewResultView(res)
		v.ElapsedSeconds = 0
		wantCh <- v
	}()

	d1 := startDaemon(t, bin, "127.0.0.1:0", "-spool", spool, "-job-slots", "1", "-checkpoint-every", "10000")
	st := d1.submitScene(t, e2eScene, api.OptionsSpec{
		Strategy: "sequential", MeanRadius: e2eScene.MeanRadius, Iterations: iters, Seed: seed,
	})

	// A reconnecting watcher rides through the whole crash. Generous
	// retry budget: the restart below takes a moment.
	watcher, err := client.New(d1.url, client.WithRetry(240, 250*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	type watchResult struct {
		final *api.JobStatus
		iters []int64
		err   error
	}
	watchCh := make(chan watchResult, 1)
	go func() {
		var seen []int64
		final, err := watcher.Wait(context.Background(), st.ID, func(ev *client.Event) {
			if ev.Progress != nil {
				seen = append(seen, ev.Progress.Iter)
			}
		})
		watchCh <- watchResult{final: final, iters: seen, err: err}
	}()

	// Wait for at least one spooled checkpoint, then kill -9.
	ckpt := filepath.Join(spool, st.ID, api.SpoolCheckpointFile)
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared before the crash window closed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := d1.getJob(t, st.ID).State; got != api.StateRunning {
		t.Fatalf("job state %q at kill time", got)
	}
	if err := d1.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	d1.cmd.Wait()

	// Restart over the same spool ON THE SAME ADDRESS, so the watcher's
	// reconnects land on the reborn daemon.
	addr := strings.TrimPrefix(d1.url, "http://")
	d2 := startDaemon(t, bin, addr, "-spool", spool, "-job-slots", "1", "-checkpoint-every", "10000")
	final := d2.waitDone(t, st.ID, 180*time.Second)
	got := e2eResult(t, final)
	want := <-wantCh
	if want.Strategy == "" {
		t.Fatal("reference detection failed")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("crash-resumed result differs from uninterrupted run\ngot  %+v\nwant %+v", got, want)
	}
	if got.Iterations != int64(iters) {
		t.Fatalf("resumed run accounted %d iterations, want %d", got.Iterations, iters)
	}

	// The watcher must arrive at the same terminal result through its
	// reconnected stream, with progress strictly increasing (no
	// replayed duplicates from the pre-crash prefix).
	select {
	case w := <-watchCh:
		if w.err != nil {
			t.Fatalf("watcher: %v", w.err)
		}
		if sr := e2eResult(t, w.final); !reflect.DeepEqual(sr, want) {
			t.Fatalf("stream result differs from polled result")
		}
		for i := 1; i < len(w.iters); i++ {
			if w.iters[i] <= w.iters[i-1] {
				t.Fatalf("stream progress not strictly increasing: %v", w.iters)
			}
		}
	case <-time.After(60 * time.Second):
		t.Fatal("watcher did not finish after the daemon restart")
	}
}

// Graceful shutdown: SIGTERM must drain the listener and leave a
// running job's spool resumable (non-terminal record + checkpoint).
func TestServiceGracefulShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := buildTool(t, "mcmcd")
	spool := t.TempDir()
	d := startDaemon(t, bin, "127.0.0.1:0", "-spool", spool, "-job-slots", "1", "-checkpoint-every", "10000")
	st := d.submitScene(t, e2eScene, api.OptionsSpec{
		Strategy: "sequential", MeanRadius: e2eScene.MeanRadius, Iterations: 5_000_000, Seed: 3,
	})
	ckpt := filepath.Join(spool, st.ID, api.SpoolCheckpointFile)
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not exit on SIGTERM")
	}

	// The spool must still describe a resumable job.
	blob, err := os.ReadFile(filepath.Join(spool, st.ID, api.SpoolRecordFile))
	if err != nil {
		t.Fatal(err)
	}
	var rec api.JobRecord
	if err := json.Unmarshal(blob, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.State.Terminal() {
		t.Fatalf("shutdown recorded terminal state %q", rec.State)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint gone after graceful shutdown: %v", err)
	}
}

// runCtl executes one mcmcctl invocation against the daemon and
// returns its stdout (stderr goes to the test log on failure).
func runCtl(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var errBuf strings.Builder
	cmd.Stderr = &errBuf
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("mcmcctl %s: %v\nstderr: %s", strings.Join(args, " "), err, errBuf.String())
	}
	return string(out)
}

// Operator-CLI end-to-end: drive a live daemon entirely through
// mcmcctl — submit, tail the SSE stream, pull diagnostics (R̂/ESS must
// be present), list, inspect the spool offline, and summarise metrics.
func TestMcmcctlE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	daemonBin := buildTool(t, "mcmcd")
	ctl := buildTool(t, "mcmcctl")
	spool := t.TempDir()
	d := startDaemon(t, daemonBin, "127.0.0.1:0", "-spool", spool, "-job-slots", "1")
	host := "-host=" + d.url

	// version reaches the live daemon.
	if out := runCtl(t, ctl, host, "version"); !strings.Contains(out, "server\tmcmcd api v1") {
		t.Fatalf("version output:\n%s", out)
	}

	// Submit a scene job via flags; -json returns the typed status.
	out := runCtl(t, ctl, host, "job", "submit", "-json",
		"-scene-w", "96", "-scene-h", "96", "-scene-count", "6", "-scene-radius", "7",
		"-scene-noise", "0.05", "-scene-seed", "11",
		"-strategy", "sequential", "-radius", "7", "-iterations", "400000", "-seed", "21")
	var st api.JobStatus
	if err := json.Unmarshal([]byte(out), &st); err != nil {
		t.Fatalf("submit -json output not a JobStatus: %v\n%s", err, out)
	}
	if st.ID == "" || st.Seed != 21 {
		t.Fatalf("submitted %+v", st)
	}

	// Tail its SSE stream to completion; the tail must include live
	// progress and end on the terminal status.
	events := runCtl(t, ctl, host, "job", "events", st.ID)
	if !strings.Contains(events, "progress\t") {
		t.Fatalf("no progress lines in events output:\n%s", events)
	}
	if !strings.Contains(events, "state\tdone") {
		t.Fatalf("events did not end on done:\n%s", events)
	}

	// diag: machine-readable R̂/ESS over the finished chain.
	var diag api.DiagView
	if err := json.Unmarshal([]byte(runCtl(t, ctl, host, "diag", "-json", st.ID)), &diag); err != nil {
		t.Fatal(err)
	}
	if diag.Samples < 8 || math.IsNaN(float64(diag.RHat)) || math.IsNaN(float64(diag.ESS)) {
		t.Fatalf("diag lacks convergence stats: %+v", diag)
	}
	human := runCtl(t, ctl, host, "diag", st.ID)
	for _, want := range []string{"rhat\t", "ess\t", "accept_rate\t"} {
		if !strings.Contains(human, want) {
			t.Fatalf("diag output missing %q:\n%s", want, human)
		}
	}
	if strings.Contains(human, "rhat\t-") {
		t.Fatalf("diag reports missing R̂:\n%s", human)
	}

	// list shows the job; get decodes its result.
	if out := runCtl(t, ctl, host, "job", "list"); !strings.Contains(out, st.ID) {
		t.Fatalf("job list missing %s:\n%s", st.ID, out)
	}
	if out := runCtl(t, ctl, host, "job", "get", st.ID); !strings.Contains(out, "state\tdone") || !strings.Contains(out, "circles\t") {
		t.Fatalf("job get output:\n%s", out)
	}

	// cancel a second, long job.
	var long api.JobStatus
	if err := json.Unmarshal([]byte(runCtl(t, ctl, host, "job", "submit", "-json",
		"-scene-w", "96", "-scene-h", "96", "-scene-count", "6", "-scene-radius", "7",
		"-radius", "7", "-iterations", "50000000")), &long); err != nil {
		t.Fatal(err)
	}
	if out := runCtl(t, ctl, host, "job", "cancel", long.ID); !strings.Contains(out, long.ID) {
		t.Fatalf("cancel output:\n%s", out)
	}
	d.waitDone(t, long.ID, 60*time.Second)

	// spool ls inspects the on-disk records without the daemon.
	spoolOut := runCtl(t, ctl, "spool", "ls", "-dir", spool)
	if !strings.Contains(spoolOut, st.ID) || !strings.Contains(spoolOut, "done") {
		t.Fatalf("spool ls output:\n%s", spoolOut)
	}

	// metrics parse and summarise.
	if out := runCtl(t, ctl, host, "metrics"); !strings.Contains(out, "mcmcd_job_duration_seconds") {
		t.Fatalf("metrics output:\n%s", out)
	}
}
