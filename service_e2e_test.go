package repro

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/pkg/parmcmc"
	"repro/pkg/service"
)

// daemon is one running mcmcd process under test.
type daemon struct {
	cmd *exec.Cmd
	url string
}

// startDaemon launches a freshly built mcmcd on an ephemeral port and
// waits for its readiness line. The process is torn down (if still
// alive) when the test ends.
func startDaemon(t *testing.T, bin string, extraArgs ...string) *daemon {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	// The readiness line is the contract: "mcmcd: listening on http://…".
	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if strings.Contains(sc.Text(), "listening on ") {
				lines <- sc.Text()
				break
			}
		}
		close(lines)
	}()
	select {
	case line, ok := <-lines:
		if !ok {
			t.Fatal("daemon exited before its readiness line")
		}
		i := strings.Index(line, "http://")
		return &daemon{cmd: cmd, url: strings.TrimSpace(line[i:])}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not become ready")
		return nil
	}
}

func (d *daemon) submitScene(t *testing.T, scene service.SceneSpec, opts service.OptionsSpec) service.JobView {
	t.Helper()
	body, err := json.Marshal(service.SubmitRequest{Scene: &scene, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(d.url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, buf.String())
	}
	var view service.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return view
}

func (d *daemon) getJob(t *testing.T, id string) service.JobView {
	t.Helper()
	resp, err := http.Get(d.url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", id, resp.StatusCode)
	}
	var view service.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return view
}

func (d *daemon) waitDone(t *testing.T, id string, timeout time.Duration) service.JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		view := d.getJob(t, id)
		switch view.State {
		case service.StateDone, service.StateFailed, service.StateCancelled:
			return view
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish within %v", id, timeout)
	return service.JobView{}
}

// e2eResult extracts and normalizes a done job's result.
func e2eResult(t *testing.T, view service.JobView) service.ResultView {
	t.Helper()
	if view.State != service.StateDone {
		t.Fatalf("job %s state %q (error %q)", view.ID, view.State, view.Error)
	}
	var res service.ResultView
	if err := json.Unmarshal(view.Result, &res); err != nil {
		t.Fatal(err)
	}
	res.ElapsedSeconds = 0
	for i := range res.Regions {
		res.Regions[i].Seconds = 0
	}
	return res
}

// e2eScene/e2eOptions are the shared black-box workload, with the
// matching direct-library call it must be bit-identical to.
var e2eScene = service.SceneSpec{W: 96, H: 96, Count: 6, MeanRadius: 7, Noise: 0.05, Seed: 11}

func e2eDirect(t *testing.T, iters int, seed uint64) service.ResultView {
	t.Helper()
	pix, _ := parmcmc.GenerateScene(parmcmc.SceneSpec{
		W: e2eScene.W, H: e2eScene.H, Count: e2eScene.Count,
		MeanRadius: e2eScene.MeanRadius, Noise: e2eScene.Noise, Seed: e2eScene.Seed,
	})
	res, err := parmcmc.Detect(pix, e2eScene.W, e2eScene.H, parmcmc.Options{
		Strategy: parmcmc.Sequential, MeanRadius: e2eScene.MeanRadius,
		Iterations: iters, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	v := service.NewResultView(res)
	v.ElapsedSeconds = 0
	return v
}

// End-to-end integration: submit a synthetic scene to a real mcmcd
// process, consume the SSE stream to completion, and pin the final
// result bit-identical to a direct parmcmc.Detect with the same seed.
func TestServiceE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := buildTool(t, "mcmcd")
	d := startDaemon(t, bin, "-spool", t.TempDir(), "-job-slots", "2")

	const iters, seed = 60000, 21
	view := d.submitScene(t, e2eScene, service.OptionsSpec{
		Strategy: "sequential", MeanRadius: e2eScene.MeanRadius, Iterations: iters, Seed: seed,
	})
	if view.State != service.StatePending || view.Seed != seed {
		t.Fatalf("submitted view %+v", view)
	}

	// Consume the SSE stream until the done event.
	resp, err := http.Get(d.url + "/v1/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var (
		progressEvents int
		final          service.JobView
		name           string
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() && final.ID == "" {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
			if name == "progress" {
				progressEvents++
			}
		case strings.HasPrefix(line, "data: ") && name == "done":
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &final); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if final.ID == "" {
		t.Fatal("SSE stream closed without a done event")
	}
	if progressEvents == 0 {
		t.Fatal("no progress events on the SSE stream")
	}

	got := e2eResult(t, final)
	if want := e2eDirect(t, iters, seed); !reflect.DeepEqual(got, want) {
		t.Fatalf("daemon result differs from direct Detect\ngot  %+v\nwant %+v", got, want)
	}

	// Liveness endpoints answer on the same listener.
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(d.url + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}
}

// Crash durability: SIGKILL the daemon mid-job, restart it on the same
// spool directory, and the resumed job must land the bit-identical
// result of an uninterrupted run.
func TestServiceCrashRestartDurability(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := buildTool(t, "mcmcd")
	spool := t.TempDir()

	// The uninterrupted reference runs concurrently with the daemon.
	const iters, seed = 1_500_000, 33
	wantCh := make(chan service.ResultView, 1)
	go func() {
		pix, _ := parmcmc.GenerateScene(parmcmc.SceneSpec{
			W: e2eScene.W, H: e2eScene.H, Count: e2eScene.Count,
			MeanRadius: e2eScene.MeanRadius, Noise: e2eScene.Noise, Seed: e2eScene.Seed,
		})
		res, err := parmcmc.Detect(pix, e2eScene.W, e2eScene.H, parmcmc.Options{
			Strategy: parmcmc.Sequential, MeanRadius: e2eScene.MeanRadius,
			Iterations: iters, Seed: seed,
		})
		if err != nil {
			wantCh <- service.ResultView{}
			return
		}
		v := service.NewResultView(res)
		v.ElapsedSeconds = 0
		wantCh <- v
	}()

	d1 := startDaemon(t, bin, "-spool", spool, "-job-slots", "1", "-checkpoint-every", "10000")
	view := d1.submitScene(t, e2eScene, service.OptionsSpec{
		Strategy: "sequential", MeanRadius: e2eScene.MeanRadius, Iterations: iters, Seed: seed,
	})

	// Wait for at least one spooled checkpoint, then kill -9.
	ckpt := filepath.Join(spool, view.ID, "checkpoint.bin")
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared before the crash window closed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := d1.getJob(t, view.ID).State; st != service.StateRunning {
		t.Fatalf("job state %q at kill time", st)
	}
	if err := d1.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	d1.cmd.Wait()

	// Restart over the same spool: the job must come back and finish.
	d2 := startDaemon(t, bin, "-spool", spool, "-job-slots", "1", "-checkpoint-every", "10000")
	final := d2.waitDone(t, view.ID, 180*time.Second)
	got := e2eResult(t, final)
	want := <-wantCh
	if want.Strategy == "" {
		t.Fatal("reference detection failed")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("crash-resumed result differs from uninterrupted run\ngot  %+v\nwant %+v", got, want)
	}
	if got.Iterations != int64(iters) {
		t.Fatalf("resumed run accounted %d iterations, want %d", got.Iterations, iters)
	}
}

// Graceful shutdown: SIGTERM must drain the listener and leave a
// running job's spool resumable (non-terminal record + checkpoint).
func TestServiceGracefulShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := buildTool(t, "mcmcd")
	spool := t.TempDir()
	d := startDaemon(t, bin, "-spool", spool, "-job-slots", "1", "-checkpoint-every", "10000")
	view := d.submitScene(t, e2eScene, service.OptionsSpec{
		Strategy: "sequential", MeanRadius: e2eScene.MeanRadius, Iterations: 5_000_000, Seed: 3,
	})
	ckpt := filepath.Join(spool, view.ID, "checkpoint.bin")
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not exit on SIGTERM")
	}

	// The spool must still describe a resumable job.
	blob, err := os.ReadFile(filepath.Join(spool, view.ID, "job.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rec struct {
		State service.State `json:"state"`
	}
	if err := json.Unmarshal(blob, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.State == service.StateDone || rec.State == service.StateFailed || rec.State == service.StateCancelled {
		t.Fatalf("shutdown recorded terminal state %q", rec.State)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint gone after graceful shutdown: %v", err)
	}
}
